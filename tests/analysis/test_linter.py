"""Tests for the SPMD superstep-safety linter (repro.analysis)."""

from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    CheckerBase,
    Finding,
    check_file,
    format_findings,
    get_checkers,
    iter_python_files,
    register_checker,
    run_checks,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def findings_for(name: str, select=None):
    return check_file(FIXTURES / name, get_checkers(select))


class TestRegistry:
    def test_builtin_checkers_registered(self):
        assert {
            "spmd-cross-rank",
            "in-table-mutation",
            "out-table-reuse",
            "packed-key-arithmetic",
        } <= set(CHECKERS)

    def test_get_checkers_select(self):
        chosen = get_checkers(["spmd-cross-rank"])
        assert [c.name for c in chosen] == ["spmd-cross-rank"]

    def test_get_checkers_unknown_raises(self):
        with pytest.raises(ValueError, match="no-such-checker"):
            get_checkers(["no-such-checker"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_checker
            class Dup(CheckerBase):  # noqa: F811 - intentionally clashing
                name = "spmd-cross-rank"
                description = "dup"

                def check(self, tree, path):
                    return []

    def test_unnamed_checker_rejected(self):
        with pytest.raises(ValueError, match="name"):

            @register_checker
            class NoName(CheckerBase):
                description = "nameless"

                def check(self, tree, path):
                    return []


class TestFixturesFire:
    """Each checker must flag its known-bad kernel at the expected lines."""

    def test_cross_rank_fixture(self):
        found = findings_for("bad_cross_rank.py", ["spmd-cross-rank"])
        assert [f.line for f in found] == [8, 15, 22]
        assert all(f.checker == "spmd-cross-rank" for f in found)

    def test_in_table_fixture(self):
        found = findings_for("bad_in_table.py", ["in-table-mutation"])
        assert [f.line for f in found] == [10, 17]

    def test_out_table_fixture(self):
        found = findings_for("bad_out_table.py", ["out-table-reuse"])
        assert [f.line for f in found] == [9]

    def test_packed_key_fixture(self):
        found = findings_for("bad_packed_key.py", ["packed-key-arithmetic"])
        assert [f.line for f in found] == [10, 16]

    def test_phase_nesting_fixture(self):
        found = findings_for("bad_phase_nesting.py", ["phase-nesting"])
        # extra end, loop-straddling pair, leaked begin -- and nothing from
        # the balanced patterns or the `# lint: allow(...)`-annotated line.
        assert [f.line for f in found] == [7, 13, 17]
        assert all(f.checker == "phase-nesting" for f in found)

    def test_allow_comment_suppresses_only_named_checker(self, tmp_path):
        bad = tmp_path / "suppressed.py"
        bad.write_text(
            "def f(tracer):\n"
            "    tracer.begin_span('a')  # lint: allow(phase-nesting)\n"
            "def g(tracer):\n"
            "    tracer.begin_span('b')  # lint: allow(some-other-rule)\n"
        )
        found = check_file(bad, get_checkers(["phase-nesting"]))
        assert [f.line for f in found] == [4]

    def test_clean_kernel_has_no_findings(self):
        assert findings_for("clean_kernel.py") == []

    def test_clean_vector_kernel_has_no_findings(self):
        # The vectorized backend rebuilds duck-typed table *views* inside
        # loops that also touch REFINE markers; that construction pattern
        # must not read as an In_Table mutation.
        assert findings_for("clean_vector_kernel.py") == []

    def test_shipped_vectorized_backend_is_clean(self):
        assert run_checks([SRC / "parallel" / "vectorized.py"]) == []
        assert run_checks([SRC / "kernels"]) == []

    def test_findings_are_deduplicated(self):
        found = findings_for("bad_cross_rank.py")
        assert len(found) == len(set(found))


class TestStaleReadFixtures:
    def test_bad_stale_read_fires(self):
        found = findings_for("bad_stale_read.py", ["spmd-stale-read"])
        assert [f.line for f in found] == [9, 20]
        assert all(f.checker == "spmd-stale-read" for f in found)

    def test_clean_stale_read_silent(self):
        assert findings_for("clean_stale_read.py", ["spmd-stale-read"]) == []


class TestShippedCodeClean:
    def test_parallel_package_clean(self):
        assert run_checks([SRC / "parallel"]) == []

    def test_whole_src_tree_clean_under_spmd_profile(self):
        assert run_checks([SRC], profile="spmd") == []

    def test_whole_src_tree_clean_modulo_baseline(self):
        """profile=all findings on src/ must all be in the checked-in baseline."""
        from repro.analysis import apply_baseline, load_baseline

        baseline = load_baseline(
            Path(__file__).parents[2] / "benchmarks" / "check_baseline.json"
        )
        new, _stale = apply_baseline(run_checks([SRC], profile="all"), baseline)
        assert new == []


class TestDriver:
    def test_iter_python_files_sorted(self):
        files = list(iter_python_files([FIXTURES]))
        assert files == sorted(files)
        assert all(p.suffix == ".py" for p in files)

    def test_single_file_path_accepted(self):
        files = list(iter_python_files([FIXTURES / "bad_out_table.py"]))
        assert len(files) == 1

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([FIXTURES / "does_not_exist"]))

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        found = check_file(bad, get_checkers(None))
        assert len(found) == 1
        assert found[0].checker == "parse-error"

    def test_run_checks_sorts_across_files(self):
        found = run_checks([FIXTURES])
        assert found == sorted(found)
        assert len(found) == 25  # every bad fixture fires, no clean one does

    def test_select_filters_run_checks(self):
        found = run_checks([FIXTURES], select=["out-table-reuse"])
        assert {f.checker for f in found} == {"out-table-reuse"}


class TestFinding:
    def test_format(self):
        f = Finding(
            path="a.py", line=3, col=7, checker="x", message="boom"
        )
        assert f.format() == "a.py:3:7: error: [x] boom"

    def test_format_carries_severity(self):
        f = Finding(
            path="a.py", line=3, col=7, checker="x", message="boom",
            severity="warning",
        )
        assert f.format() == "a.py:3:7: warning: [x] boom"

    def test_to_dict_roundtrip(self):
        f = Finding(path="a.py", line=1, col=1, checker="c", message="m")
        assert f.to_dict()["checker"] == "c"

    def test_format_findings_sorted_block(self):
        a = Finding(path="b.py", line=1, col=1, checker="c", message="m")
        b = Finding(path="a.py", line=9, col=1, checker="c", message="m")
        out = format_findings([a, b])
        assert out.splitlines()[0].startswith("a.py")
