"""Tests for `repro check` and `repro detect --sanitize`."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"
PARALLEL_SRC = Path(__file__).parents[2] / "src" / "repro" / "parallel"


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main([
        "generate", "lfr", "--vertices", "200", "--avg-degree", "8",
        "--max-degree", "20", "--mixing", "0.15",
        "--output", str(path), "--seed", "7",
    ])
    assert rc == 0
    return path


class TestCheckCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.paths == ["src/repro/parallel"]
        assert args.select is None

    def test_clean_tree_exits_zero(self, capsys):
        rc = main(["check", str(PARALLEL_SRC)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_fixtures_exit_one(self, capsys):
        rc = main(["check", str(FIXTURES)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "spmd-cross-rank" in out
        assert "in-table-mutation" in out
        assert "out-table-reuse" in out
        assert "packed-key-arithmetic" in out

    def test_findings_are_path_line_col_formatted(self, capsys):
        rc = main(["check", str(FIXTURES / "bad_out_table.py")])
        assert rc == 1
        line = capsys.readouterr().out.splitlines()[0]
        assert "bad_out_table.py:9:" in line
        assert "[out-table-reuse]" in line

    def test_select_restricts_checkers(self, capsys):
        rc = main([
            "check", str(FIXTURES), "--select", "packed-key-arithmetic",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "packed-key-arithmetic" in out
        assert "spmd-cross-rank" not in out

    def test_unknown_checker_exits_two(self, capsys):
        rc = main(["check", str(FIXTURES), "--select", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        rc = main(["check", "no/such/dir"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_list_checkers(self, capsys):
        rc = main(["check", "--list-checkers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spmd-cross-rank" in out
        assert "MessageBus" in out  # descriptions are shown


class TestDetectSanitize:
    def test_parallel_with_sanitize(self, edge_file, capsys):
        rc = main([
            "detect", str(edge_file), "--algorithm", "parallel",
            "--ranks", "2", "--sanitize",
        ])
        assert rc == 0
        assert "parallel: Q=" in capsys.readouterr().out

    def test_sequential_with_sanitize_rejected(self, edge_file, capsys):
        rc = main([
            "detect", str(edge_file), "--algorithm", "sequential",
            "--sanitize",
        ])
        assert rc == 2
        assert "--sanitize" in capsys.readouterr().err
