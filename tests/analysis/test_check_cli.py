"""Tests for `repro check` and `repro detect --sanitize`."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"
PARALLEL_SRC = Path(__file__).parents[2] / "src" / "repro" / "parallel"


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main([
        "generate", "lfr", "--vertices", "200", "--avg-degree", "8",
        "--max-degree", "20", "--mixing", "0.15",
        "--output", str(path), "--seed", "7",
    ])
    assert rc == 0
    return path


class TestCheckCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.paths == ["src/repro/parallel"]
        assert args.select is None

    def test_clean_tree_exits_zero(self, capsys):
        rc = main(["check", str(PARALLEL_SRC)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_fixtures_exit_one(self, capsys):
        rc = main(["check", str(FIXTURES)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "spmd-cross-rank" in out
        assert "in-table-mutation" in out
        assert "out-table-reuse" in out
        assert "packed-key-arithmetic" in out

    def test_findings_are_path_line_col_formatted(self, capsys):
        rc = main(["check", str(FIXTURES / "bad_out_table.py")])
        assert rc == 1
        line = capsys.readouterr().out.splitlines()[0]
        assert "bad_out_table.py:9:" in line
        assert "[out-table-reuse]" in line

    def test_select_restricts_checkers(self, capsys):
        rc = main([
            "check", str(FIXTURES), "--select", "packed-key-arithmetic",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "packed-key-arithmetic" in out
        assert "spmd-cross-rank" not in out

    def test_unknown_checker_exits_two(self, capsys):
        rc = main(["check", str(FIXTURES), "--select", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        rc = main(["check", "no/such/dir"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_list_checkers(self, capsys):
        rc = main(["check", "--list-checkers"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spmd-cross-rank" in out
        assert "MessageBus" in out  # descriptions are shown


class TestCheckProfiles:
    def test_default_profile_is_spmd(self):
        args = build_parser().parse_args(["check"])
        assert args.profile == "spmd"

    def test_concurrency_profile_skips_spmd_checkers(self, capsys):
        rc = main([
            "check", str(FIXTURES), "--profile", "concurrency",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "unguarded-shared-state" in out
        assert "lock-order-inversion" in out
        assert "spmd-cross-rank" not in out

    def test_all_profile_unions_both(self, capsys):
        rc = main(["check", str(FIXTURES), "--profile", "all"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "spmd-cross-rank" in out
        assert "unguarded-shared-state" in out

    def test_severity_error_hides_warnings(self, capsys):
        rc = main([
            "check", str(FIXTURES / "bad_blocking_under_lock.py"),
            "--profile", "concurrency", "--severity", "error",
        ])
        # the only findings there are warnings, so filtered run is clean
        assert rc == 0
        rc = main([
            "check", str(FIXTURES / "bad_blocking_under_lock.py"),
            "--profile", "concurrency",
        ])
        assert rc == 1
        assert "warning" in capsys.readouterr().out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "2 = usage error" in out


class TestCheckOutputFormats:
    def test_json_format_parses(self, capsys):
        import json

        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"), "--format", "json",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["checker"] == "out-table-reuse"
        assert doc["findings"][0]["line"] == 9

    def test_json_clean_run_emits_empty_list(self, capsys):
        import json

        rc = main(["check", str(PARALLEL_SRC), "--format", "json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out) == {"findings": []}

    def test_sarif_format_parses(self, capsys):
        import json

        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"), "--format", "sarif",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results[0]["ruleId"] == "out-table-reuse"


class TestBaselineWorkflow:
    def test_write_then_apply_baseline_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"),
            "--write-baseline", str(baseline),
        ])
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"),
            "--baseline", str(baseline),
        ])
        assert rc == 0  # the one finding is baselined away

    def test_new_finding_escapes_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"),
            "--write-baseline", str(baseline),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "check", str(FIXTURES), "--baseline", str(baseline),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "bad_cross_rank.py" in out  # not baselined: still reported
        assert "bad_out_table.py:9:" not in out  # baselined: suppressed

    def test_stale_baseline_entries_noted(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main([
            "check", str(FIXTURES / "bad_out_table.py"),
            "--write-baseline", str(baseline),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "check", str(FIXTURES / "clean_kernel.py"),
            "--baseline", str(baseline),
        ])
        assert rc == 0
        assert "stale" in capsys.readouterr().err


class TestListSuppressions:
    def test_audit_lists_inline_allows(self, capsys):
        src = Path(__file__).parents[2] / "src" / "repro"
        rc = main(["check", str(src), "--list-suppressions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "workers.py" in out
        assert "blocking-call-under-lock" in out

    def test_unknown_checker_in_allow_warned(self, tmp_path, capsys):
        bad = tmp_path / "s.py"
        bad.write_text("x = 1  # lint: allow(made-up-rule)\n")
        rc = main(["check", str(bad), "--list-suppressions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "made-up-rule" in out
        assert "WARNING" in out

    def test_no_suppressions_summary(self, tmp_path, capsys):
        clean = tmp_path / "c.py"
        clean.write_text("x = 1\n")
        rc = main(["check", str(clean), "--list-suppressions"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "0 suppression site(s)" in captured.err


class TestDetectSanitize:
    def test_parallel_with_sanitize(self, edge_file, capsys):
        rc = main([
            "detect", str(edge_file), "--algorithm", "parallel",
            "--ranks", "2", "--sanitize",
        ])
        assert rc == 0
        assert "parallel: Q=" in capsys.readouterr().out

    def test_sequential_with_sanitize_rejected(self, edge_file, capsys):
        rc = main([
            "detect", str(edge_file), "--algorithm", "sequential",
            "--sanitize",
        ])
        assert rc == 2
        assert "--sanitize" in capsys.readouterr().err
