"""Tests for the lock-set analysis and the concurrency checker family."""

import ast
from pathlib import Path

from repro.analysis import check_file, get_checkers
from repro.analysis.locks import LockId, ModuleLockAnalysis

FIXTURES = Path(__file__).parent / "fixtures"

CONCURRENCY = [
    "unguarded-shared-state",
    "blocking-call-under-lock",
    "lock-order-inversion",
    "condition-wait-no-loop",
]


def analyze(source):
    return ModuleLockAnalysis(ast.parse(source))


def findings_for(name, select=CONCURRENCY):
    return check_file(FIXTURES / name, get_checkers(select))


class TestLockDiscovery:
    def test_class_lock_attributes_found(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._rlock = threading.RLock()\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            self._x = 1\n"
        )
        assert a.reentrant[LockId("C", "_lock")] is False
        assert a.reentrant[LockId("C", "_rlock")] is True

    def test_condition_aliases_wrapped_lock(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cv = threading.Condition(self._lock)\n"
            "        self._x = 0\n"
            "    def a(self):\n"
            "        with self._lock:\n"
            "            self._x = 1\n"
            "    def b(self):\n"
            "        with self._cv:\n"
            "            self._x = 2\n"
        )
        # both mutations resolve to the same lock: no unguarded split
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset({LockId("C", "_lock")})
        assert all(m.held for m in a.mutations)

    def test_guarded_constructor_still_registers_lock(self):
        # the Tracer pattern: RLock() if threadsafe else None
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self, ts):\n"
            "        self._lock = threading.RLock() if ts else None\n"
        )
        assert LockId("C", "_lock") in a.reentrant


class TestHeldSets:
    def test_mutation_under_with_holds_lock(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            self._x = 1\n"
            "        self._y = 2\n"
        )
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset({LockId("C", "_lock")})
        assert held["_y"] == frozenset()

    def test_must_analysis_joins_by_intersection(self):
        # lock held on only one branch into the mutation: NOT held
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def m(self, p):\n"
            "        if p:\n"
            "            self._lock.acquire()\n"
            "        self._x = 1\n"
        )
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset()

    def test_acquire_release_calls_tracked(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def m(self):\n"
            "        self._lock.acquire()\n"
            "        self._x = 1\n"
            "        self._lock.release()\n"
            "        self._y = 2\n"
        )
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset({LockId("C", "_lock")})
        assert held["_y"] == frozenset()

    def test_init_mutations_exempt(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._x = 0\n"
        )
        assert a.mutations == []


class TestHelperPropagation:
    SRC = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def public(self):\n"
        "        with self._lock:\n"
        "            self._helper()\n"
        "    def _helper(self):\n"
        "        self._x = 1\n"
    )

    def test_private_helper_inherits_callsite_locks(self):
        a = analyze(self.SRC)
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset({LockId("C", "_lock")})

    def test_escaped_helper_gets_no_entry_locks(self):
        # same class, but _helper is also handed to a Thread as a target:
        # it may run with no locks held, so the propagation must not apply.
        src = self.SRC + (
            "    def start(self):\n"
            "        threading.Thread(target=self._helper).start()\n"
        )
        a = analyze(src)
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset()

    def test_chained_helpers_converge(self):
        a = analyze(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def public(self):\n"
            "        with self._lock:\n"
            "            self._mid()\n"
            "    def _mid(self):\n"
            "        self._leaf()\n"
            "    def _leaf(self):\n"
            "        self._x = 1\n"
        )
        held = {m.attr: m.held for m in a.mutations}
        assert held["_x"] == frozenset({LockId("C", "_lock")})


class TestFixturePairs:
    def test_bad_unguarded_state_fires(self):
        found = findings_for("bad_unguarded_state.py")
        assert {f.checker for f in found} == {"unguarded-shared-state"}
        assert {f.line for f in found} == {19, 20}

    def test_clean_guarded_state_silent(self):
        assert findings_for("clean_guarded_state.py") == []

    def test_bad_lock_order_fires(self):
        found = findings_for("bad_lock_order.py")
        assert {f.checker for f in found} == {"lock-order-inversion"}
        assert len(found) == 2  # both directions of the cycle reported

    def test_clean_lock_order_silent(self):
        # includes a re-entrant RLock self-acquisition that must NOT fire
        assert findings_for("clean_lock_order.py") == []

    def test_bad_blocking_under_lock_fires(self):
        found = findings_for("bad_blocking_under_lock.py")
        assert {f.checker for f in found} == {"blocking-call-under-lock"}
        assert all(f.severity == "warning" for f in found)
        assert len(found) == 3  # detect run, sleep, file write

    def test_bad_barrier_under_lock_fires(self):
        found = findings_for("bad_barrier_under_lock.py")
        assert {f.checker for f in found} == {"blocking-call-under-lock"}
        # barrier wait, queue put, queue get, worker join
        assert len(found) == 4
        messages = " ".join(f.message for f in found)
        assert "_barrier.wait" in messages
        assert "worker.join" in messages

    def test_bad_wait_no_loop_fires(self):
        found = findings_for("bad_wait_no_loop.py")
        assert {f.checker for f in found} == {"condition-wait-no-loop"}
        assert len(found) == 1

    def test_clean_wait_loop_silent(self):
        assert findings_for("clean_wait_loop.py") == []

    def test_spmd_fixtures_silent_under_concurrency_profile(self):
        for name in ("bad_out_table.py", "bad_cross_rank.py", "clean_kernel.py"):
            assert findings_for(name) == []


class TestSelfDeadlock:
    def test_nonreentrant_self_acquisition_flagged(self):
        src = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def m(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        import tempfile

        with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as fh:
            fh.write(src)
            path = fh.name
        found = check_file(path, get_checkers(["lock-order-inversion"]))
        assert len(found) == 1
        assert "self-deadlock" in found[0].message


class TestModuleLevelLocks:
    def test_module_lock_order_inversion_detected(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def g():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )
        found = check_file(bad, get_checkers(["lock-order-inversion"]))
        assert len(found) == 2
