"""Known-bad kernel: Out_Table-derived values read after the exchange."""


def stale_sigma(st, bus, rank):
    entries = st.tables.out_entries()
    inbox = bus.exchange(rank, entries)
    # BAD: `entries` predates the exchange; peers have already applied
    # their moves, so every weight in it is one superstep stale.
    total = sum(w for _, _, w in entries)
    return total, inbox


def stale_through_buffer(st, bus, rank, targets):
    requests = {}
    for dst in targets:
        requests.setdefault(dst, []).append(st.tables.lookup_tot(dst))
    bus.barrier()
    # BAD: requests carries pre-barrier lookup_tot values across the
    # superstep boundary without flowing through the collective.
    return [v for vs in requests.values() for v in vs]
