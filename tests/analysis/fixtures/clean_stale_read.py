"""Clean kernel: pre-boundary values are consumed before the exchange,
and post-boundary reads use only the collective's result."""


def fresh_sigma(st, bus, rank):
    entries = st.tables.out_entries()
    local = sum(w for _, _, w in entries)  # consumed pre-exchange: fine
    inbox = bus.exchange(rank, entries)
    remote = sum(w for _, _, w in inbox)  # the sanctioned crossing
    return local + remote


def rebuilt_each_superstep(st, bus, rank, steps):
    totals = []
    for _ in range(steps):
        entries = st.tables.out_entries()  # rebuilt after every boundary
        inbox = bus.exchange(rank, entries)
        totals.append(len(inbox))
    return totals
