"""Clean two-lock class: every path takes the locks in one global order.

Also exercises the re-entrancy rule: re-acquiring an RLock under itself is
fine and must not be reported as a self-deadlock.
"""

import threading


class OrderedQueues:
    def __init__(self):
        self._in_lock = threading.Lock()
        self._out_lock = threading.Lock()
        self._state_lock = threading.RLock()
        self._inbox = []
        self._outbox = []
        self._stats = {}

    def forward(self):
        with self._in_lock:
            with self._out_lock:
                self._outbox.append(self._inbox.pop())

    def bounce(self):
        with self._in_lock:
            with self._out_lock:
                self._inbox.append(self._outbox.pop())

    def bump(self, key):
        with self._state_lock:
            with self._state_lock:  # re-entrant: allowed
                self._stats[key] = self._stats.get(key, 0) + 1
