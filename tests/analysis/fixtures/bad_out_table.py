"""Known-bad kernel: accumulates into Out_Table without resetting it."""


def propagate_without_reset(ranks, result):
    for st in ranks:
        u_in, c_in, w_in = result.inbox(st.rank)
        # BAD: no reset_out_table() first -- the second iteration through
        # this loop double-counts every w_{u->c} from the first.
        st.tables.accumulate_out(u_in, c_in, w_in)
