"""Fixture: unbalanced bare begin_span/end_span pairs (phase-nesting)."""


def extra_end(tracer):
    tracer.begin_span("a")
    tracer.end_span()
    tracer.end_span()  # VIOLATION: pops the caller's span


def straddles_loop(tracer, items):
    tracer.begin_span("outer")
    for _item in items:
        tracer.end_span()  # VIOLATION: closes across the loop boundary


def never_closed(tracer):
    tracer.begin_span("leaked")  # VIOLATION: never closed in this scope


def balanced(tracer, items):
    with tracer.span("context managers are always safe"):
        pass
    tracer.begin_span("a")
    try:
        pass
    finally:
        tracer.end_span()
    for _item in items:
        tracer.begin_span("per-iteration")
        tracer.end_span()


def delegated_close(tracer):
    # Cross-function pairing is legitimate when annotated.
    tracer.begin_span("job")  # lint: allow(phase-nesting)
