"""Known-bad SPMD transport: barrier/queue rendezvous inside critical
sections.

A superstep barrier wait while holding a lock deadlocks the whole rank
fleet the moment any peer needs that lock to reach its own wait; queue
handoffs and worker joins under a lock serialize (or deadlock) the same
way.
"""

import threading


class SharedBus:
    def __init__(self, barrier, queue):
        self._lock = threading.Lock()
        self._barrier = barrier
        self._queue = queue
        self._ops = 0

    def superstep(self, payload):
        with self._lock:
            self._ops += 1
            # BAD: every peer must reach the barrier, but a peer that needs
            # _lock to get there never will -- the wait can't fill.
            self._barrier.wait(timeout=30)

    def handoff(self, item):
        with self._lock:
            self._queue.put(item)  # BAD: blocks when the queue is full
            return self._queue.get()  # BAD: blocks on a peer under the lock

    def reap(self, worker):
        with self._lock:
            worker.join()  # BAD: the worker may need _lock to finish
