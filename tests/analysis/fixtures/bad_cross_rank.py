"""Known-bad kernel: reads and writes another rank's state directly."""


def leaky_refine(ranks, partition):
    for st in ranks:
        # BAD: peeks at the neighbouring rank's community array instead of
        # fetching it through the bus.
        other = ranks[(st.rank + 1) % len(ranks)]
        st.community[0] = other.community[0]


def all_pairs_gather(ranks):
    for st in ranks:
        # BAD: nested sweep over every rank's state.
        for peer in ranks:
            st.tot += peer.tot.sum()


def comprehension_gather(ranks):
    for st in ranks:
        # BAD: gathers remote state without an allgather collective.
        totals = [peer.tot.sum() for peer in ranks]
        st.tot[0] = sum(totals)
