"""Known-bad service: slow detection and I/O run inside critical sections."""

import threading
import time


class SlowService:
    def __init__(self, engine):
        self._lock = threading.Lock()
        self._results = {}
        self._engine = engine

    def refresh(self, graph):
        with self._lock:
            # BAD: a full detection run while every reader queues on _lock.
            summary = self._engine.detect_communities(graph)
            self._results["latest"] = summary

    def throttle(self):
        with self._lock:
            time.sleep(0.5)  # BAD: sleeping under the lock

    def dump(self, fh):
        with self._lock:
            fh.write(repr(self._results))  # BAD: file I/O under the lock
