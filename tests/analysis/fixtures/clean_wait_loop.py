"""Clean waiter: the predicate is re-checked in a while loop around wait."""

import threading


class PredicateQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items = []

    def put(self, item):
        with self._lock:
            self._items.append(item)
            self._ready.notify()

    def take(self):
        with self._ready:
            while not self._items:
                self._ready.wait()
            return self._items.pop(0)
