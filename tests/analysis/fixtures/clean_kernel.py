"""Known-good kernel: the disciplined shape of a STATE PROPAGATION phase.

Every rule the bad fixtures break is respected here: cross-rank flow goes
through the bus, Out_Table is reset before accumulation, In_Table is only
read, and packed keys are unpacked before any id arithmetic.
"""

from repro.hashing import pack_key, unpack_key


def state_propagation(sim, partition, ranks):
    bus = sim.bus
    outboxes = []
    for st in ranks:
        v, u, w = st.tables.in_edges()
        c = st.community[partition.to_local(u)]
        outboxes.append((partition.owner(v), v, c, w))
    result = bus.exchange(outboxes)
    for st in ranks:
        u_in, c_in, w_in = result.inbox(st.rank)
        st.tables.reset_out_table()
        st.tables.accumulate_out(u_in, c_in, w_in)


def renumber_keys(v, u, offset):
    keys = pack_key(v, u)
    t1, t2 = unpack_key(keys)
    return pack_key(t1 + offset, t2 + offset)
