"""Known-bad store: one mutation site skips the lock the others hold."""

import threading


class LeakyStore:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._count = 0

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._count += 1

    def evict(self, key):
        # BAD: mutates _items and _count with no lock held, racing put().
        self._items.pop(key, None)
        self._count -= 1

    def size(self):
        with self._lock:
            return self._count
