"""Known-bad pair of code paths taking two locks in opposite orders."""

import threading


class TwoQueues:
    def __init__(self):
        self._in_lock = threading.Lock()
        self._out_lock = threading.Lock()
        self._inbox = []
        self._outbox = []

    def forward(self):
        with self._in_lock:
            with self._out_lock:
                self._outbox.append(self._inbox.pop())

    def bounce(self):
        # BAD: opposite order -- forward() holds in_lock wanting out_lock
        # while bounce() holds out_lock wanting in_lock: deadlock.
        with self._out_lock:
            with self._in_lock:
                self._inbox.append(self._outbox.pop())
