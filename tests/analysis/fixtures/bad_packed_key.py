"""Known-bad kernel: does ordinary arithmetic on packed Eq.-5 keys."""

from repro.hashing import pack_key


def shift_vertex_ids(v, u):
    keys = pack_key(v, u)
    # BAD: adding 1 to a packed key increments the low bit field and can
    # carry into the high field, silently changing the *other* tuple element.
    renamed = keys + 1
    return renamed


def rescale_keys(v, u, factor):
    keys = pack_key(v, u)
    keys *= factor  # BAD: multiplication scrambles both bit fields.
    return keys
