"""Known-good kernel: the vectorized backend's array-state idiom.

The vector backend keeps CSR arrays as the level's ground truth and exposes
them through duck-typed ``in_table`` / ``out_table`` *views* for the tracer
and sanitizer.  Rebuilding those views at state construction -- including
inside the RECONSTRUCTION loop that also does Out_Table-flavored REFINE
work -- is not an In_Table mutation; only genuine mid-level writebacks are.
The in-table-mutation checker must stay silent on every pattern here.
"""


class _ArrayTables:
    __slots__ = ("in_table", "out_table")

    def __init__(self, state):
        # Attribute writes on a fresh view object are construction, not
        # mutation of a live level's In_Table.
        self.in_table = state
        self.out_table = state


def rebuild_states_after_reconstruction(sim, partition, ranks, collected):
    new_states = []
    for st in ranks:
        u, c, w = st.tables.out_entries()  # REFINE marker in scope
        state = collected[st.rank]
        state.tables = _ArrayTables(state)
        new_states.append(state)
    return new_states


def refine_over_arrays(sim, ranks, m, resolution):
    for st in ranks:
        u, c, w = st.tables.out_entries()
        # Array-op REFINE: in-place ufuncs over scratch arrays, no table
        # writes at all.
        sigma = st.rep_tot[c]
        sigma *= resolution
        sigma /= 2.0 * m * m
        st.out_w = w - sigma
