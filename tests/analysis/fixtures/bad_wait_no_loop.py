"""Known-bad waiter: Condition.wait guarded by `if`, not a `while` loop."""

import threading


class OneShotQueue:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items = []

    def put(self, item):
        with self._lock:
            self._items.append(item)
            self._ready.notify()

    def take(self):
        with self._ready:
            if not self._items:
                # BAD: a spurious wakeup (or a faster consumer) leaves
                # _items empty and the pop below raises.
                self._ready.wait()
            return self._items.pop(0)
