"""Clean store: every mutation holds the lock, including through helpers.

Exercises the analyzer's private-helper propagation (``_evict_oldest`` is
only ever called under ``self._lock``, so its lock-free mutations are
fine), Condition-aliasing (``self._not_empty`` wraps ``self._lock``), and
constructor exemption (``__init__`` publishes before any sharing).
"""

import threading


class GuardedStore:
    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items = {}
        self._order = []

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._order.append(key)
            if len(self._order) > 8:
                self._evict_oldest()
            self._not_empty.notify()

    def pop_any(self):
        # Acquiring the aliased condition holds the same underlying lock.
        with self._not_empty:
            while not self._order:
                self._not_empty.wait()
            return self._evict_oldest()

    def _evict_oldest(self):
        key = self._order.pop(0)
        return self._items.pop(key)
