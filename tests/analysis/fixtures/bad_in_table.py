"""Known-bad kernel: mutates In_Table inside the REFINE loop."""


def refine_with_in_table_writeback(ranks, max_inner):
    for _ in range(max_inner):
        for st in ranks:
            u, c, w = st.tables.out_entries()
            # BAD: In_Table is the level's immutable graph structure; writing
            # REFINE results back into it corrupts every later iteration.
            st.tables.add_in_edges(u, c, w)


def refine_with_direct_clear(ranks):
    for st in ranks:
        best = st.lookup_tot(st.community)
        # BAD: clears In_Table mid-level.
        st.tables.in_table.clear()
        st.tot[:] = best
