"""Tests for the runtime invariant sanitizer (repro.analysis.sanitizer)."""

import numpy as np
import pytest

import repro.parallel.louvain as louvain_mod
from repro.analysis import (
    NULL_SANITIZER,
    InvariantViolation,
    NullSanitizer,
    Sanitizer,
    resolve_sanitizer,
    sanitize_enabled,
)
from repro.observability import Tracer
from repro.observability.events import EventKind
from repro.parallel import detect_communities, parallel_louvain
from repro.runtime import Simulation
from repro.runtime.comm import MessageBus


class TestResolution:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert resolve_sanitizer(None) is NULL_SANITIZER

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_env_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()
        assert resolve_sanitizer(None).enabled

    def test_env_falsy(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert resolve_sanitizer(None) is NULL_SANITIZER

    def test_explicit_bool_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert resolve_sanitizer(False) is NULL_SANITIZER
        monkeypatch.delenv("REPRO_SANITIZE")
        assert resolve_sanitizer(True).enabled

    def test_instance_passthrough(self):
        san = Sanitizer()
        assert resolve_sanitizer(san) is san

    def test_simulation_create_wires_bus(self):
        sim = Simulation.create(2, sanitize=True)
        assert sim.sanitizer.enabled
        assert sim.bus.sanitizer is sim.sanitizer


class TestChecks:
    def test_pack_bounds_field_overflow(self):
        san = Sanitizer()
        with pytest.raises(InvariantViolation) as ei:
            san.check_pack_bounds(
                np.array([1 << 40]), np.array([0]), 32, rank=3, table="in"
            )
        exc = ei.value
        assert exc.invariant == "key-pack-range"
        assert exc.rank == 3
        assert exc.context["table"] == "in"

    def test_pack_bounds_negative_id(self):
        san = Sanitizer()
        with pytest.raises(InvariantViolation, match="negative id"):
            san.check_pack_bounds(np.array([-1]), np.array([0]), 32)

    def test_pack_bounds_sentinel_collision(self):
        san = Sanitizer()
        top = (1 << 32) - 1
        with pytest.raises(InvariantViolation, match="EMPTY"):
            san.check_pack_bounds(np.array([top]), np.array([top]), 32)
        # One below the sentinel is fine.
        san.check_pack_bounds(np.array([top]), np.array([top - 1]), 32)

    def test_epsilon_bounds(self):
        san = Sanitizer()
        san.check_epsilon(0.5, 1)
        for bad in (0.0, -0.1, 1.5, float("nan")):
            with pytest.raises(InvariantViolation) as ei:
                san.check_epsilon(bad, 2)
            assert ei.value.invariant == "epsilon-bounds"

    def test_conservation(self):
        san = Sanitizer()
        san.check_conservation(100.0, 100.0 + 1e-9, what="sigma_tot")
        with pytest.raises(InvariantViolation) as ei:
            san.check_conservation(90.0, 100.0, what="sigma_tot")
        assert ei.value.invariant == "weight-conservation"
        assert ei.value.context["expected"] == 100.0
        assert ei.value.context["actual"] == 90.0

    def test_finite(self):
        san = Sanitizer()
        san.check_finite(np.array([1.0, 2.0]))
        with pytest.raises(InvariantViolation, match="non-finite"):
            san.check_finite(np.array([1.0, np.inf]), rank=1)

    def test_context_rides_on_violation(self):
        san = Sanitizer()
        san.enter_level(2)
        san.enter_iteration(5)
        san.enter_phase("REFINE")
        with pytest.raises(InvariantViolation) as ei:
            san.check_epsilon(9.0, 5)
        exc = ei.value
        assert (exc.level, exc.iteration, exc.phase) == (2, 5, "REFINE")
        assert "level=2" in str(exc) and "iteration=5" in str(exc)
        assert exc.to_dict()["phase"] == "REFINE"

    def test_enter_level_resets_iteration(self):
        san = Sanitizer()
        san.enter_iteration(7)
        san.enter_level(1)
        assert san.iteration is None

    def test_violation_mirrors_to_tracer(self):
        tracer = Tracer()
        san = Sanitizer(tracer=tracer)
        with pytest.raises(InvariantViolation):
            san.check_epsilon(-1.0, 1)
        kinds = [e.kind for e in tracer.events]
        assert EventKind.INVARIANT in kinds
        ev = tracer.events[-1]
        assert ev.data["invariant"] == "epsilon-bounds"

    def test_null_sanitizer_is_inert(self):
        null = NullSanitizer()
        assert not null.enabled
        null.check_epsilon(99.0, 1)  # would raise on a live sanitizer
        null.check_conservation(0.0, 1.0)
        null.check_pack_bounds(np.array([-1]), np.array([0]), 32)
        assert null.checks_run == 0


class TestExchangeParticipation:
    def test_skipped_rank_raises(self):
        san = Sanitizer()
        bus = MessageBus(2, sanitizer=san)
        box = (np.array([0]), np.array([7]))
        with pytest.raises(InvariantViolation) as ei:
            bus.exchange([None, box])
        exc = ei.value
        assert exc.invariant == "superstep-participation"
        assert exc.context["missing_ranks"] == [0]
        assert exc.rank == 0

    def test_all_participating_passes(self):
        san = Sanitizer()
        bus = MessageBus(2, sanitizer=san)
        box = (np.array([0]), np.array([7]))
        res = bus.exchange([box, box])
        assert res.inbox(0)[0].size == 2

    def test_all_idle_is_allowed(self):
        bus = MessageBus(2, sanitizer=Sanitizer())
        bus.exchange([None, None])  # quiescent superstep, not a violation


class TestSanitizedRuns:
    """Full runs under the sanitizer: clean passes, seeded faults raise."""

    def test_clean_run_passes_and_matches(self, two_cliques):
        plain = parallel_louvain(two_cliques, num_ranks=3, max_levels=4)
        checked = parallel_louvain(
            two_cliques, num_ranks=3, max_levels=4, sanitize=True
        )
        assert np.array_equal(plain.membership, checked.membership)
        assert checked.simulation.sanitizer.checks_run > 0

    def test_env_var_enables_run(self, two_cliques, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        res = parallel_louvain(two_cliques, num_ranks=2)
        assert res.simulation.sanitizer.checks_run > 0

    def test_detect_communities_sanitize(self, two_cliques):
        summary = detect_communities(two_cliques, num_ranks=2, sanitize=True)
        assert summary.raw.simulation.sanitizer.enabled

    def test_detect_sequential_rejects_sanitize(self, two_cliques):
        with pytest.raises(TypeError, match="parallel"):
            detect_communities(
                two_cliques, algorithm="sequential", sanitize=True
            )

    def test_seeded_in_table_mutation_raises(self, two_cliques, monkeypatch):
        real = louvain_mod._apply_moves

        def corrupting(sim, partition, ranks, *args, **kwargs):
            moved = real(sim, partition, ranks, *args, **kwargs)
            ranks[0].tables.add_in_edges(
                np.array([0]), np.array([0]), np.array([1.0])
            )
            return moved

        monkeypatch.setattr(louvain_mod, "_apply_moves", corrupting)
        with pytest.raises(InvariantViolation) as ei:
            parallel_louvain(two_cliques, num_ranks=3, sanitize=True)
        exc = ei.value
        assert exc.invariant == "in-table-immutable"
        assert exc.rank == 0
        assert exc.level == 0 and exc.iteration == 1

    def test_seeded_sigma_tot_corruption_raises(self, two_cliques, monkeypatch):
        real = louvain_mod._apply_moves

        def corrupting(sim, partition, ranks, *args, **kwargs):
            moved = real(sim, partition, ranks, *args, **kwargs)
            ranks[0].tot[0] += 5.0  # conjure sigma_tot out of thin air
            return moved

        monkeypatch.setattr(louvain_mod, "_apply_moves", corrupting)
        with pytest.raises(InvariantViolation) as ei:
            parallel_louvain(two_cliques, num_ranks=3, sanitize=True)
        exc = ei.value
        assert exc.invariant == "weight-conservation"
        assert "sigma_tot" in exc.message
        assert exc.level == 0 and exc.iteration == 1

    def test_seeded_reconstruction_weight_loss_raises(
        self, two_cliques, monkeypatch
    ):
        real = louvain_mod._reconstruct

        def lossy(sim, partition, ranks, config):
            new_ranks, new_partition, labels = real(
                sim, partition, ranks, config
            )
            table = new_ranks[0].tables.in_table
            keys, weights = table.items()
            if keys.size:  # drop one superedge's weight
                table.insert_accumulate(keys[:1], np.array([-weights[0]]))
            return new_ranks, new_partition, labels

        monkeypatch.setattr(louvain_mod, "_reconstruct", lossy)
        with pytest.raises(InvariantViolation) as ei:
            parallel_louvain(two_cliques, num_ranks=3, sanitize=True)
        assert ei.value.invariant == "weight-conservation"
        assert "RECONSTRUCTION" in ei.value.message

    def test_seeded_bad_epsilon_raises(self, two_cliques):
        class BadSchedule:
            def epsilon(self, iteration):
                return 1.5  # move fraction above 1 breaks Eq. 7's contract

        with pytest.raises(InvariantViolation) as ei:
            parallel_louvain(
                two_cliques, num_ranks=2, schedule=BadSchedule(),
                sanitize=True,
            )
        assert ei.value.invariant == "epsilon-bounds"

    def test_seeded_nonfinite_weight_raises(self, two_cliques, monkeypatch):
        real = louvain_mod._state_propagation

        def poisoning(sim, partition, ranks):
            for st in ranks:
                if len(st.tables.in_table):
                    keys, weights = st.tables.in_table.items()
                    st.tables.in_table.insert_accumulate(
                        keys[:1], np.array([np.nan])
                    )
                    break
            return real(sim, partition, ranks)

        monkeypatch.setattr(louvain_mod, "_state_propagation", poisoning)
        with pytest.raises(InvariantViolation) as ei:
            parallel_louvain(two_cliques, num_ranks=2, sanitize=True)
        assert ei.value.invariant in ("finite-weights", "in-table-immutable")


class TestSanitizedExtensionPaths:
    """Sanitizer hooks on the LPA and dynamic-graph paths."""

    def test_lpa_clean_run_checks_and_matches(self, two_cliques):
        from repro.parallel import label_propagation

        plain = label_propagation(two_cliques, num_ranks=3, seed=0)
        checked = label_propagation(
            two_cliques, num_ranks=3, seed=0, sanitize=True
        )
        assert np.array_equal(plain.membership, checked.membership)
        assert checked.simulation.sanitizer.checks_run > 0

    def test_lpa_traces_run_and_iterations(self, two_cliques):
        from repro.parallel import label_propagation

        tracer = Tracer()
        res = label_propagation(two_cliques, num_ranks=2, tracer=tracer)
        kinds = [e.kind for e in tracer.events]
        assert EventKind.RUN_START in kinds and EventKind.RUN_END in kinds
        assert kinds.count(EventKind.ITERATION) == res.iterations

    def test_lpa_seeded_weight_corruption_raises(self, two_cliques, monkeypatch):
        import importlib

        # The package re-exports the function under the module's name, so
        # attribute-style imports would resolve to the function.
        lpa_mod = importlib.import_module("repro.parallel.label_propagation")
        real = lpa_mod._propagate_labels

        def corrupting(sim, partition, tables, labels, two_m=None):
            keys, weights = tables[0].in_table.items()
            if keys.size:  # conjure edge weight out of thin air mid-run
                tables[0].in_table.insert_accumulate(
                    keys[:1], np.array([7.0])
                )
            return real(sim, partition, tables, labels, two_m)

        monkeypatch.setattr(lpa_mod, "_propagate_labels", corrupting)
        with pytest.raises(InvariantViolation) as ei:
            lpa_mod.label_propagation(two_cliques, num_ranks=2, sanitize=True)
        assert ei.value.invariant == "weight-conservation"
        assert "2m" in ei.value.message

    def test_apply_edge_batch_conserves(self, two_cliques):
        from repro.parallel.dynamic import EdgeBatch, apply_edge_batch

        batch = EdgeBatch(
            add_src=np.array([0, 1]), add_dst=np.array([5, 6]),
            add_weight=np.array([2.0, 3.0]),
            remove_src=np.array([0]), remove_dst=np.array([1]),
        )
        san = Sanitizer()
        out = apply_edge_batch(two_cliques, batch, sanitize=san)
        assert san.checks_run > 0
        assert out.num_vertices == two_cliques.num_vertices

    def test_apply_edge_batch_seeded_drift_raises(
        self, two_cliques, monkeypatch
    ):
        import repro.parallel.dynamic as dyn_mod
        from repro.graph import Graph

        real = Graph.from_edges

        def lossy(src, dst, wt, **kwargs):
            return real(src, dst, wt * 0.5, **kwargs)  # halve every weight

        monkeypatch.setattr(dyn_mod.Graph, "from_edges", staticmethod(lossy))
        batch = dyn_mod.EdgeBatch(
            add_src=np.array([0]), add_dst=np.array([5])
        )
        with pytest.raises(InvariantViolation) as ei:
            dyn_mod.apply_edge_batch(two_cliques, batch, sanitize=True)
        assert ei.value.invariant == "weight-conservation"

    def test_incremental_louvain_sanitized(self, two_cliques):
        from repro.parallel.dynamic import EdgeBatch, incremental_louvain

        prev = np.zeros(two_cliques.num_vertices, dtype=np.int64)
        batch = EdgeBatch(add_src=np.array([0]), add_dst=np.array([3]))
        new_graph, result = incremental_louvain(
            two_cliques, batch, prev, num_ranks=2, sanitize=True
        )
        assert result.simulation.sanitizer.checks_run > 0
