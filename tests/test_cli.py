"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "g.txt"
    rc = main([
        "generate", "lfr", "--vertices", "300", "--avg-degree", "10",
        "--max-degree", "30", "--mixing", "0.15",
        "--output", str(path), "--seed", "5",
    ])
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect", "x.txt"])
        assert args.algorithm == "parallel"
        assert args.ranks == 4


class TestGenerate:
    def test_lfr_with_ground_truth(self, tmp_path):
        out = tmp_path / "lfr.txt"
        gt = tmp_path / "gt.txt"
        rc = main([
            "generate", "lfr", "--vertices", "200", "--output", str(out),
            "--ground-truth", str(gt),
        ])
        assert rc == 0
        assert out.exists() and gt.exists()
        n_gt = sum(1 for line in gt.open() if not line.startswith("#"))
        assert n_gt == 200

    def test_rmat(self, tmp_path):
        out = tmp_path / "rmat.txt"
        rc = main(["generate", "rmat", "--scale", "8", "--output", str(out)])
        assert rc == 0
        lines = [l for l in out.open() if not l.startswith("#")]
        assert len(lines) > 100

    def test_bter(self, tmp_path):
        out = tmp_path / "bter.txt"
        rc = main([
            "generate", "bter", "--vertices", "300", "--rho", "0.5",
            "--output", str(out),
        ])
        assert rc == 0

    def test_ground_truth_rejected_for_rmat(self, tmp_path):
        rc = main([
            "generate", "rmat", "--scale", "7",
            "--output", str(tmp_path / "x.txt"),
            "--ground-truth", str(tmp_path / "gt.txt"),
        ])
        assert rc == 2


class TestDetect:
    def test_parallel_with_outputs(self, edge_file, tmp_path, capsys):
        comm = tmp_path / "comm.txt"
        dend = tmp_path / "dend.json"
        rc = main([
            "detect", str(edge_file), "--ranks", "4", "--machine", "p7ih",
            "--output", str(comm), "--dendrogram", str(dend),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel: Q=" in out
        assert "modeled P7-IH time" in out
        data = json.loads(dend.read_text())
        assert data["depth"] >= 1
        lines = [l for l in comm.open() if not l.startswith("#")]
        assert len(lines) == 300

    def test_sequential(self, edge_file, capsys):
        rc = main(["detect", str(edge_file), "--algorithm", "sequential"])
        assert rc == 0
        assert "sequential: Q=" in capsys.readouterr().out

    def test_lpa(self, edge_file, capsys):
        rc = main(["detect", str(edge_file), "--algorithm", "lpa"])
        assert rc == 0
        assert "label propagation: Q=" in capsys.readouterr().out

    def test_lpa_dendrogram_rejected(self, edge_file, tmp_path):
        rc = main([
            "detect", str(edge_file), "--algorithm", "lpa",
            "--dendrogram", str(tmp_path / "d.json"),
        ])
        assert rc == 2


class TestTrace:
    def test_detect_trace_then_report(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["detect", str(edge_file), "--trace", str(trace)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        assert trace.exists()

        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        # The acceptance surface: per-iteration eps, movers and per-level Q.
        assert "eps" in out and "movers" in out and "Q" in out
        assert "Convergence (per inner iteration)" in out
        assert "Phase breakdown" in out

    def test_chrome_trace_is_valid_trace_event_json(self, edge_file, tmp_path):
        trace = tmp_path / "t.json"
        rc = main([
            "detect", str(edge_file), "--trace", str(trace),
            "--trace-format", "chrome",
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert all(
            {"name", "ph", "ts", "pid", "tid"} <= set(ev)
            for ev in doc["traceEvents"]
        )

    def test_prom_snapshot(self, edge_file, tmp_path):
        trace = tmp_path / "t.prom"
        rc = main([
            "detect", str(edge_file), "--trace", str(trace),
            "--trace-format", "prom",
        ])
        assert rc == 0
        text = trace.read_text()
        assert "# TYPE repro_run_modularity gauge" in text

    def test_trace_rejected_for_lpa(self, edge_file, tmp_path):
        rc = main([
            "detect", str(edge_file), "--algorithm", "lpa",
            "--trace", str(tmp_path / "t.jsonl"),
        ])
        assert rc == 2

    def test_report_sections(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["detect", str(edge_file), "--trace", str(trace)])
        capsys.readouterr()
        rc = main(["report", str(trace), "--section", "convergence"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Convergence" in out and "Phase breakdown" not in out

    def test_report_missing_file(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestTraceStreaming:
    def test_detect_trace_streams_jsonl(self, edge_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["detect", str(edge_file), "--trace", str(trace)])
        assert rc == 0
        assert "streamed" in capsys.readouterr().out
        lines = [l for l in trace.open() if l.strip()]
        assert len(lines) > 100
        assert all(json.loads(l)["kind"] for l in lines)


class TestTraceGolden:
    @pytest.fixture(scope="class")
    def golden_dir(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("goldens")
        rc = main(["trace", "record", "lfr-small", "--dir", str(d)])
        assert rc == 0
        return d

    def test_list(self, capsys):
        rc = main(["trace", "list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lfr-small" in out and "rmat-small" in out
        assert "social-amazon" in out

    def test_record_writes_golden(self, golden_dir, capsys):
        assert (golden_dir / "lfr-small.jsonl").exists()

    def test_compare_clean_run_passes(self, golden_dir, capsys):
        rc = main(["trace", "compare", "lfr-small", "--dir", str(golden_dir)])
        assert rc == 0
        assert "ok (matches" in capsys.readouterr().out

    def test_compare_perturbed_run_fails(self, golden_dir, capsys):
        """The gate's self-test knob: a perturbed schedule must exit 1 and
        print the drift table."""
        rc = main([
            "trace", "compare", "lfr-small", "--dir", str(golden_dir),
            "--perturb-p1", "4.0",
        ])
        assert rc == 1
        captured = capsys.readouterr()
        assert "DRIFT" in captured.out
        assert "Golden-trace drift" in captured.out
        assert "golden-trace gate failed" in captured.err

    def test_compare_missing_golden_hints_record(self, tmp_path, capsys):
        rc = main(["trace", "compare", "lfr-small", "--dir", str(tmp_path)])
        assert rc == 2
        assert "repro trace record" in capsys.readouterr().err

    def test_unknown_benchmark_rejected(self, tmp_path, capsys):
        rc = main(["trace", "record", "nope", "--dir", str(tmp_path)])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_tail_prints_event_lines(self, golden_dir, capsys):
        rc = main(["trace", "tail", str(golden_dir / "lfr-small.jsonl")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run_start" in out and "run_end" in out

    def test_tail_missing_file(self, tmp_path, capsys):
        rc = main(["trace", "tail", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestInfo:
    def test_info(self, edge_file, capsys):
        rc = main(["info", str(edge_file), "--clustering"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertices          : 300" in out
        assert "global clustering" in out


class TestExperiment:
    @pytest.mark.parametrize("exp", ["table1", "fig5", "table4"])
    def test_small_experiments_run(self, exp, capsys):
        rc = main(["experiment", exp, "--scale", "0.15"])
        assert rc == 0
        assert capsys.readouterr().out.strip()

    def test_fig2(self, capsys):
        rc = main(["experiment", "fig2", "--scale", "0.4"])
        assert rc == 0
        assert "fitted p1=" in capsys.readouterr().out


class TestTraceDiff:
    @staticmethod
    def _write_trace(path, modularity=0.4, movers=6):
        from repro.observability import JsonlWriterSink, Tracer

        t = Tracer(sink=JsonlWriterSink(str(path)))
        t.run_start("parallel", num_vertices=10, num_edges=20, num_ranks=2)
        t.level_start(0, num_vertices=10)
        t.iteration(0, 1, movers=movers, epsilon=1.0, dq_threshold=0.0,
                    candidates=10, modularity=modularity)
        t.level_end(0, modularity=modularity, iterations=1)
        t.run_end(modularity=modularity, num_levels=1)
        t.close()
        return path

    def test_identical_traces_exit_0(self, tmp_path, capsys):
        a = self._write_trace(tmp_path / "a.jsonl")
        b = self._write_trace(tmp_path / "b.jsonl")
        rc = main(["trace", "diff", str(a), str(b)])
        assert rc == 0
        assert "within tolerances" in capsys.readouterr().out

    def test_drifting_traces_exit_1_with_table(self, tmp_path, capsys):
        a = self._write_trace(tmp_path / "a.jsonl", modularity=0.4)
        b = self._write_trace(tmp_path / "b.jsonl", modularity=0.9)
        rc = main(["trace", "diff", str(a), str(b)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "modularity" in out

    def test_tolerance_flags_are_honoured(self, tmp_path, capsys):
        a = self._write_trace(tmp_path / "a.jsonl", movers=6)
        b = self._write_trace(tmp_path / "b.jsonl", movers=7)
        assert main(["trace", "diff", str(a), str(b)]) == 1
        capsys.readouterr()
        rc = main([
            "trace", "diff", str(a), str(b), "--movers-tol", "0.5",
        ])
        assert rc == 0

    def test_unreadable_input_exit_2(self, tmp_path, capsys):
        a = self._write_trace(tmp_path / "a.jsonl")
        rc = main(["trace", "diff", str(a), str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot fingerprint" in capsys.readouterr().err

    def test_garbage_input_exit_2(self, tmp_path, capsys):
        a = self._write_trace(tmp_path / "a.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        rc = main(["trace", "diff", str(a), str(bad)])
        assert rc == 2


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8737
        assert args.workers == 2
        assert args.queue_capacity == 64
        assert args.ranks == 4
        assert args.trace_dir == "service-traces"
        assert args.trace_segment_bytes == 4_000_000
        assert args.trace_segments == 8
        assert args.no_trace is False
        assert args.graph is None

    def test_overrides(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--workers", "4", "--no-trace",
            "--job-timeout", "2.5", "--max-retries", "3",
        ])
        assert args.port == 0 and args.workers == 4
        assert args.no_trace is True
        assert args.job_timeout == 2.5
        assert args.max_retries == 3
