"""Edge-case tests for experiment runners not covered by the smoke tests."""

import numpy as np
import pytest

from repro.harness import run_fig9_weak
from repro.harness.experiments import (
    _paper_work_scale,
    _sequential_reference_seconds,
)
from repro.parallel import parallel_louvain
from repro.runtime import P7IH


class TestWorkScaleHelper:
    def test_scale_is_orig_over_proxy(self):
        ws = _paper_work_scale("UK-2007", 1_000_000)
        assert ws == pytest.approx(3783.7e6 / 1e6)

    def test_unknown_graph_raises(self):
        with pytest.raises(KeyError):
            _paper_work_scale("NotAGraph", 10)

    def test_zero_edges_guarded(self):
        assert np.isfinite(_paper_work_scale("Amazon", 0))


class TestSequentialReference:
    def test_proportional_to_entries_and_sweeps(self, small_lfr):
        res = parallel_louvain(small_lfr.graph, num_ranks=2)
        base = _sequential_reference_seconds(res, P7IH, 1.0)
        scaled = _sequential_reference_seconds(res, P7IH, 10.0)
        assert scaled == pytest.approx(10 * base)
        assert base > 0


class TestFig9Validation:
    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown generator"):
            run_fig9_weak(node_counts=[2], vertices_per_node=64, generator="magic")
