"""Unit tests for the TEPS accounting helpers."""

import pytest

from repro.generators import generate_lfr
from repro.harness import first_level_seconds, gteps, teps
from repro.parallel import parallel_louvain
from repro.runtime import BGQ, P7IH


@pytest.fixture(scope="module")
def run():
    g = generate_lfr(
        num_vertices=600, avg_degree=12, max_degree=40, mixing=0.2, seed=2
    ).graph
    return g, parallel_louvain(g, num_ranks=4)


class TestFirstLevelSeconds:
    def test_positive_and_below_total(self, run):
        from repro.runtime import total_time

        g, res = run
        t0 = first_level_seconds(res, P7IH, nodes=4)
        assert 0 < t0 <= total_time(res.simulation.profiler, P7IH, nodes=4) + 1e-12

    def test_machines_differ(self, run):
        _, res = run
        assert first_level_seconds(res, P7IH, nodes=4) != first_level_seconds(
            res, BGQ, nodes=4
        )

    def test_work_scale_increases_time(self, run):
        _, res = run
        assert first_level_seconds(res, P7IH, nodes=4, work_scale=100.0) > (
            first_level_seconds(res, P7IH, nodes=4)
        )

    def test_no_levels_raises(self):
        from repro.graph import Graph

        res = parallel_louvain(Graph.from_edges([], []), num_ranks=2)
        with pytest.raises(ValueError):
            first_level_seconds(res, P7IH, nodes=2)


class TestTeps:
    def test_teps_is_edges_over_seconds(self, run):
        g, res = run
        secs = first_level_seconds(res, P7IH, nodes=4)
        assert teps(g.num_edges, res, P7IH, nodes=4) == pytest.approx(
            g.num_edges / secs
        )

    def test_gteps_is_scaled(self, run):
        g, res = run
        assert gteps(g.num_edges, res, P7IH, nodes=4) == pytest.approx(
            teps(g.num_edges, res, P7IH, nodes=4) / 1e9
        )

    def test_more_threads_more_teps(self, run):
        g, res = run
        slow = teps(g.num_edges, res, P7IH, threads=1, nodes=4)
        fast = teps(g.num_edges, res, P7IH, threads=32, nodes=4)
        assert fast > slow

    def test_consistent_scaling_of_edges_and_work(self, run):
        """TEPS at scale w with w-scaled edges >= unscaled TEPS (fixed
        per-superstep overheads amortize over more work)."""
        g, res = run
        base = teps(g.num_edges, res, P7IH, nodes=4)
        scaled = teps(g.num_edges * 100, res, P7IH, nodes=4, work_scale=100.0)
        assert scaled >= base * 0.99
