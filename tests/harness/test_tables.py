"""Tests for the text-rendering helpers."""

from repro.harness import banner, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        header, sep, r1, r2 = lines
        assert header.index("bb") == r1.index("2.5")

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]], float_fmt="{:.2f}")
        assert "0.12" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


def test_format_series():
    s = format_series("speedup", [2, 4], [1.9, 3.7])
    assert s.startswith("speedup:")
    assert "2=1.9" in s and "4=3.7" in s


def test_banner():
    b = banner("Fig. 9", width=40)
    assert "Fig. 9" in b
    assert len(b) == 40
