"""Smoke tests for every experiment runner (tiny configurations).

The benchmarks run paper-sized configurations; these tests only assert that
each runner produces structurally valid, qualitatively sane output quickly.
"""

import numpy as np
import pytest

from repro.harness import (
    UK2007_LITERATURE,
    first_level_seconds,
    gteps,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7_nodes,
    run_fig7_threads,
    run_fig8,
    run_fig9_strong,
    run_fig9_weak,
    run_table1,
    run_table3,
    run_table4,
)
from repro.parallel import parallel_louvain
from repro.runtime import BGQ, P7IH


class TestTable1:
    def test_all_rows_present(self):
        rows = run_table1(scale=0.15)
        names = [r.name for r in rows]
        assert "Amazon" in names and "R-MAT" in names and "BTER" in names
        assert len(rows) == 12
        for r in rows:
            assert r.proxy_vertices > 0 and r.proxy_edges > 0


class TestFig2:
    def test_fit_produces_decaying_schedule(self):
        res = run_fig2(num_vertices=300, runs_per_config=2, seed=1)
        assert res.fitted_p1 > 0 and res.fitted_p2 > 0
        assert len(res.traces) >= 4
        assert res.predicted[0] > res.predicted[-1]

    def test_traces_decay(self):
        res = run_fig2(num_vertices=300, runs_per_config=2, seed=2)
        for t in res.traces:
            if len(t) >= 3:
                assert t[0] > t[-1] - 1e-9


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig4(["Amazon", "Wikipedia"], num_ranks=4, scale=0.2,
                        naive_max_inner=6)

    def test_heuristic_tracks_sequential(self, rows):
        for r in rows:
            assert r.parallel_q[-1] >= r.sequential_q[-1] - 0.12

    def test_naive_loses(self, rows):
        amazon = rows[0]
        assert amazon.naive_q[-1] < amazon.parallel_q[-1]

    def test_evolution_ratio_decreasing(self, rows):
        for r in rows:
            ev = r.parallel_evolution
            assert all(a >= b - 1e-9 for a, b in zip(ev, ev[1:]))

    def test_first_level_merges_most_vertices(self, rows):
        for r in rows:
            assert r.first_level_merge_fraction > 0.5


class TestFig5:
    def test_distributions_similar(self):
        rows = run_fig5(["Amazon"], num_ranks=4, scale=0.2)
        r = rows[0]
        assert r.seq_largest > 1 and r.par_largest > 1
        # largest communities within 3x of each other (paper: 278 vs 358)
        ratio = r.par_largest / r.seq_largest
        assert 1 / 3 < ratio < 3


class TestTable3:
    def test_high_similarity_rows(self):
        rows = run_table3(num_ranks=4, scale=0.2)
        assert [r.graph for r in rows] == [
            "Amazon", "ND-Web", "LFR(mu=0.4)", "LFR(mu=0.5)"
        ]
        for r in rows:
            # Tiny-scale smoke thresholds; the bench asserts tighter values
            # at full proxy scale (see benchmarks/bench_table3_quality.py).
            # LFR(mu=0.5) at n=400 is near-structureless, so only the pair-
            # counting metric is meaningful there.
            assert r.report.rand_index > 0.8
            if r.graph != "LFR(mu=0.5)":
                assert r.report.nmi > 0.5
                assert r.report.nvd < 0.45


class TestFig6:
    @pytest.fixture(scope="class")
    def res(self):
        return run_fig6(rmat_scale=12, num_nodes=4, threads_per_node=8)

    def test_entry_counts_cover_graph(self, res):
        total = res.entries["fibonacci"].sum()
        assert total == res.entries["linear_congruential"].sum()
        assert total > 0

    def test_fibonacci_no_worse_than_lcg(self, res):
        assert res.max_bin["fibonacci"].max() <= res.max_bin["linear_congruential"].max() + 1

    def test_load_factor_sweep_monotone(self, res):
        lfs = sorted(res.load_factor_avg_bin, reverse=True)
        means = [res.load_factor_avg_bin[lf].mean() for lf in lfs]
        assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))


class TestFig7:
    def test_thread_speedup_monotone(self):
        curves = run_fig7_threads(
            ["LiveJournal"], thread_counts=[2, 8, 32], scale=0.3
        )
        c = curves[0]
        assert c.speedup == sorted(c.speedup)
        assert c.speedup[-1] < 32  # sublinear
        assert c.speedup[-1] > 2 * c.speedup[0] / 2  # grows with threads

    def test_node_speedup_grows(self):
        # The paper's Fig. 7b/c uses medium/large graphs; small graphs do
        # not node-scale (latency-bound), which the model reproduces.
        curves = run_fig7_nodes(
            ["LiveJournal"], node_counts=[1, 4, 16], scale=0.3
        )
        c = curves[0]
        assert c.speedup[-1] > c.speedup[0]


class TestFig8:
    def test_refine_dominates(self):
        res = run_fig8(graph_name="UK-2005", node_counts=[4], scale=0.15)
        outer = res.outer_breakdown[0]
        refine_total = sum(lv.get("REFINE", 0.0) for lv in outer)
        recon_total = sum(lv.get("GRAPH_RECONSTRUCTION", 0.0) for lv in outer)
        assert refine_total > recon_total

    def test_first_level_dominates(self):
        res = run_fig8(graph_name="UK-2005", node_counts=[4], scale=0.15)
        outer = res.outer_breakdown[0]
        t0 = sum(outer[0].values())
        total = sum(sum(lv.values()) for lv in outer)
        assert t0 > 0.5 * total

    def test_inner_iterations_recorded(self):
        res = run_fig8(graph_name="UK-2005", node_counts=[4], scale=0.15)
        inner = res.inner_breakdown[0]
        assert len(inner) >= 2
        assert any("FIND_BEST" in it for it in inner)


class TestTable4:
    def test_row_structure(self):
        res = run_table4(nodes=4, scale=0.15)
        assert res.our_modularity > 0.7
        assert res.our_time_s > 0
        assert len(res.literature) == len(UK2007_LITERATURE)


class TestFig9:
    def test_weak_scaling_gteps_grows(self):
        curve = run_fig9_weak(
            node_counts=[2, 8], vertices_per_node=128, machine=BGQ
        )
        assert curve.points[-1].gteps > curve.points[0].gteps

    def test_strong_scaling_runs(self):
        curve = run_fig9_strong(
            node_counts=[2, 8], graph_name="UK-2005", scale=0.15, machine=P7IH
        )
        assert all(p.gteps > 0 for p in curve.points)
        assert curve.points[0].edges == curve.points[1].edges


class TestTeps:
    def test_first_level_seconds_positive(self, small_lfr):
        res = parallel_louvain(small_lfr.graph, num_ranks=4)
        secs = first_level_seconds(res, P7IH, nodes=4)
        assert secs > 0

    def test_gteps_scale(self, small_lfr):
        res = parallel_louvain(small_lfr.graph, num_ranks=4)
        g = gteps(small_lfr.graph.num_edges, res, P7IH, nodes=4)
        assert 0 < g < 1e3
