"""Tests for the worker pool and the embeddable DetectionService.

Covers the service-concurrency edge cases the subsystem exists for:
queue-full backpressure, cancellation of a *running* job, per-job timeout,
retry/backoff exhaustion surfacing the last error, and the warm-start
update matching a cold full re-run on the same final graph.
"""

import threading
import time

import numpy as np
import pytest

from repro.graph import planted_partition
from repro.metrics import modularity_from_labels
from repro.observability import ListSink
from repro.parallel import EdgeBatch, apply_edge_batch, detect_communities
from repro.service import (
    DetectionService,
    JobState,
    QueueFullError,
    TransientJobError,
)


@pytest.fixture(scope="module")
def graph():
    g, _ = planted_partition(6, 15, 0.4, 0.02, seed=3)
    return g


def blocking_service(**kwargs):
    """A one-worker service whose runner blocks until ``release`` is set."""
    release = threading.Event()
    entered = threading.Event()

    def runner(job, ctx):
        entered.set()
        while not release.wait(0.01):
            ctx.check_cancelled()
        ctx.check_cancelled()
        return {"ok": True}

    kwargs.setdefault("num_workers", 1)
    svc = DetectionService(runner=runner, **kwargs)
    return svc, release, entered


class TestBackpressure:
    def test_queue_full_raises_without_blocking(self, graph):
        svc, release, entered = blocking_service(queue_capacity=2)
        try:
            running = svc.submit_graph(graph)
            entered.wait(5)  # the worker holds this one; queue is empty again
            svc.submit_graph(graph)
            svc.submit_graph(graph)
            t0 = time.monotonic()
            with pytest.raises(QueueFullError, match="queue full"):
                svc.submit_graph(graph)
            assert time.monotonic() - t0 < 0.5  # rejected, not blocked
            release.set()
            assert svc.wait(running.job_id, timeout=10).state == JobState.DONE
        finally:
            release.set()
            svc.close()


class TestCancellation:
    def test_cancel_running_job(self, graph):
        svc, release, entered = blocking_service()
        try:
            job = svc.submit_graph(graph)
            assert entered.wait(5)
            assert svc.cancel(job.job_id) is True
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.CANCELLED
            assert job.result is None
            assert "cancel" in job.error
        finally:
            release.set()
            svc.close()

    def test_cancel_interrupts_real_detection_run(self):
        # A big enough graph that cancellation lands mid-run, observed
        # through the per-job trace sink rather than between jobs.
        big, _ = planted_partition(20, 60, 0.3, 0.01, seed=9)
        svc = DetectionService(num_workers=1)
        try:
            job = svc.submit_graph(big)
            deadline = time.monotonic() + 10
            while job.state != JobState.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.002)
            svc.cancel(job.job_id)
            job = svc.wait(job.job_id, timeout=30)
            assert job.state == JobState.CANCELLED
            assert job.result is None
            assert svc.store.latest_version() is None  # nothing published
        finally:
            svc.close()

    def test_cancel_pending_job(self, graph):
        svc, release, entered = blocking_service(queue_capacity=4)
        try:
            svc.submit_graph(graph)
            entered.wait(5)
            queued = svc.submit_graph(graph)
            assert svc.cancel(queued.job_id) is True
            assert queued.state == JobState.CANCELLED
        finally:
            release.set()
            svc.close()


class TestTimeout:
    def test_per_job_timeout_fails_the_job(self, graph):
        svc, release, entered = blocking_service(monitor_interval=0.01)
        try:
            job = svc.submit_graph(graph, timeout=0.1)
            assert entered.wait(5)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert "timed out after 0.1s" in job.error
            assert job.timed_out
        finally:
            release.set()
            svc.close()

    def test_timeout_is_not_retried(self, graph):
        svc, release, entered = blocking_service(monitor_interval=0.01)
        try:
            job = svc.submit_graph(graph, timeout=0.1, max_retries=3)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert job.attempts == 1
        finally:
            release.set()
            svc.close()

    def test_fast_job_beats_its_timeout(self, graph):
        svc = DetectionService(num_workers=1)
        try:
            job = svc.submit_graph(graph, timeout=30)
            job = svc.wait(job.job_id, timeout=30)
            assert job.state == JobState.DONE
        finally:
            svc.close()


class TestRetries:
    def test_exhaustion_surfaces_last_error(self):
        calls = []

        def runner(job, ctx):
            calls.append(time.monotonic())
            raise TransientJobError(f"flaky #{len(calls)}")

        svc = DetectionService(
            num_workers=1, runner=runner, monitor_interval=0.01
        )
        try:
            g, _ = planted_partition(2, 4, 0.5, 0.1, seed=0)
            job = svc.submit_graph(g, max_retries=2)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert job.attempts == 3  # 1 initial + 2 retries
            assert "failed after 3 attempt(s)" in job.error
            assert "flaky #3" in job.error  # the *last* error, not the first
        finally:
            svc.close()

    def test_backoff_spaces_attempts(self):
        stamps = []

        def runner(job, ctx):
            stamps.append(time.monotonic())
            raise TransientJobError("again")

        svc = DetectionService(num_workers=1, runner=runner)
        try:
            g, _ = planted_partition(2, 4, 0.5, 0.1, seed=0)
            job = svc.submit_graph(g, max_retries=2)
            job.backoff_base = 0.1
            svc.wait(job.job_id, timeout=10)
            assert len(stamps) == 3
            assert stamps[1] - stamps[0] >= 0.09  # first backoff ~0.1s
            assert stamps[2] - stamps[1] >= 0.18  # doubled ~0.2s
        finally:
            svc.close()

    def test_transient_then_success(self):
        state = {"failures": 1}

        def runner(job, ctx):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise TransientJobError("transient hiccup")
            return {"ok": True}

        svc = DetectionService(num_workers=1, runner=runner)
        try:
            g, _ = planted_partition(2, 4, 0.5, 0.1, seed=0)
            job = svc.submit_graph(g, max_retries=2)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.DONE
            assert job.attempts == 2
        finally:
            svc.close()

    def test_permanent_error_fails_first_attempt(self):
        def runner(job, ctx):
            raise ValueError("bad payload")

        svc = DetectionService(num_workers=1, runner=runner)
        try:
            g, _ = planted_partition(2, 4, 0.5, 0.1, seed=0)
            job = svc.submit_graph(g, max_retries=5)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert job.attempts == 1
            assert job.error == "bad payload" or "ValueError" in job.error
        finally:
            svc.close()


class TestDetectionAndUpdates:
    def test_detect_publishes_snapshot(self, graph):
        with DetectionService(num_workers=2) as svc:
            job = svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            assert job.state == JobState.DONE
            assert job.result["version"] == 1
            snap = svc.snapshot()
            assert snap.kind == "full"
            assert snap.membership.size == graph.num_vertices
            assert job.result["modularity"] == pytest.approx(snap.modularity)

    def test_warm_start_matches_cold_rerun(self, graph):
        """The ISSUE acceptance bar: warm-start Q within 0.01 of cold Q."""
        rng = np.random.default_rng(17)
        n = graph.num_vertices
        add_src = rng.integers(0, n, size=25)
        add_dst = (add_src + rng.integers(1, n, size=25)) % n
        batch = EdgeBatch(add_src=add_src, add_dst=add_dst)

        with DetectionService(num_workers=1, seed=0) as svc:
            svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            upd = svc.wait(svc.submit_edge_batch(batch).job_id, timeout=60)
            assert upd.state == JobState.DONE
            warm_snap = svc.snapshot(upd.result["version"])

        final_graph = apply_edge_batch(graph, batch)
        cold = detect_communities(
            final_graph, algorithm="parallel", num_ranks=4, seed=0
        )
        assert warm_snap.modularity == pytest.approx(cold.modularity, abs=0.01)
        # Both results are genuine partitions of the same final graph.
        assert modularity_from_labels(
            final_graph, warm_snap.membership
        ) == pytest.approx(warm_snap.modularity, abs=1e-9)

    def test_update_chains_versions(self, graph):
        with DetectionService(num_workers=1) as svc:
            svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            b1 = EdgeBatch(add_src=np.array([0]), add_dst=np.array([7]))
            b2 = EdgeBatch(add_src=np.array([1]), add_dst=np.array([8]))
            j1 = svc.submit_edge_batch(b1)
            j2 = svc.submit_edge_batch(b2)
            svc.wait(j1.job_id, timeout=60)
            svc.wait(j2.job_id, timeout=60)
            # base_version=None chains: 1 <- 2 <- 3.
            assert j1.result["base_version"] == 1
            assert j2.result["base_version"] == 2
            assert svc.store.latest_version() == 3

    def test_update_before_any_snapshot_retries_then_fails(self):
        with DetectionService(num_workers=1) as svc:
            batch = EdgeBatch(add_src=np.array([0]), add_dst=np.array([1]))
            job = svc.submit_edge_batch(batch, max_retries=1)
            job.backoff_base = 0.01
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert job.attempts == 2
            assert "no snapshots" in job.error

    def test_update_against_evicted_version_is_permanent(self, graph):
        with DetectionService(num_workers=1) as svc:
            svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            batch = EdgeBatch(add_src=np.array([0]), add_dst=np.array([1]))
            job = svc.submit_edge_batch(batch, base_version=42, max_retries=3)
            job = svc.wait(job.job_id, timeout=10)
            assert job.state == JobState.FAILED
            assert job.attempts == 1  # named-version misses are not retried


class TestTracingAndMetrics:
    def test_job_events_are_tagged_and_shared(self, graph):
        sink = ListSink()
        with DetectionService(num_workers=1, sink=sink) as svc:
            job = svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            assert job.state == JobState.DONE
        # Per-job events are tagged; service-wide counters carry no job id.
        tagged = [e for e in sink.events if "job_id" in e.data]
        assert tagged and {e.data["job_id"] for e in tagged} == {job.job_id}
        names = [e.name for e in sink.events]
        assert f"job:{job.job_id}" in names  # per-job envelope span
        assert any(n == "run" for n in names)  # real detection trace inside

    def test_metrics_text_counts_outcomes(self, graph):
        with DetectionService(num_workers=1) as svc:
            svc.wait(svc.submit_graph(graph).job_id, timeout=60)
            text = svc.metrics_text()
        assert "repro_service_jobs_submitted 1" in text
        assert "repro_service_jobs_completed 1" in text
        assert "repro_service_queue_capacity" in text
        assert "repro_service_latest_version 1" in text
        assert "# TYPE repro_service_jobs_completed counter" in text

    def test_health_reports_inflight_state(self, graph):
        svc, release, entered = blocking_service()
        try:
            svc.submit_graph(graph)
            assert entered.wait(5)
            h = svc.health()
            assert h["status"] == "ok"
            assert h["jobs_running"] == 1
            assert h["workers"] == 1
        finally:
            release.set()
            svc.close()

    def test_close_is_idempotent(self, graph):
        svc = DetectionService(num_workers=1)
        svc.close()
        svc.close()
        assert svc.health()["status"] == "shutting_down"
