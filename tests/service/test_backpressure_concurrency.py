"""Backpressure correctness under real concurrent submitters.

The 503 protocol is only trustworthy if the capacity check is atomic with
admission: N racing submitters must see *either* a 202 with a unique job id
*or* a 503 -- never a lost submission, never two submitters sharing a job
slot, and never an admitted job that fails to reach a terminal state.  The
queue-level tests pin the exact accounting (nothing drains, so admissions
must equal capacity precisely); the HTTP tests check the same invariants
through the full server stack with workers draining concurrently.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph import planted_partition
from repro.service import DetectionService, ServiceServer
from repro.service.jobs import Job, JobQueue, QueueFullError


class TestQueueLevelRace:
    """No drain: admissions must match capacity exactly."""

    def test_concurrent_submitters_fill_to_capacity_exactly(self):
        capacity = 8
        q = JobQueue(capacity=capacity)
        threads = 16
        per_thread = 4
        accepted: list[str] = []
        rejected = [0]
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def submitter():
            barrier.wait()  # maximize contention on the capacity check
            for _ in range(per_thread):
                try:
                    job = q.submit(Job(kind="detect"))
                    with lock:
                        accepted.append(job.job_id)
                except QueueFullError:
                    with lock:
                        rejected[0] += 1

        pool = [threading.Thread(target=submitter) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=10)
        assert len(accepted) == capacity
        assert rejected[0] == threads * per_thread - capacity
        assert len(set(accepted)) == capacity  # unique ids, no double admit

    def test_claim_never_yields_duplicates_under_race(self):
        capacity = 12
        q = JobQueue(capacity=capacity)
        for _ in range(capacity):
            q.submit(Job(kind="detect"))
        claimed: list[str] = []
        lock = threading.Lock()

        def worker():
            while True:
                job = q.claim(timeout=0.2)
                if job is None:
                    return
                with lock:
                    claimed.append(job.job_id)

        pool = [threading.Thread(target=worker) for _ in range(6)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=10)
        assert len(claimed) == capacity
        assert len(set(claimed)) == capacity  # each job claimed exactly once


def _post_graph(base, edges):
    req = urllib.request.Request(
        base + "/graph",
        data=json.dumps({"edges": edges}).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), dict(exc.headers)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return json.loads(resp.read().decode())


class TestHttpBackpressure:
    @pytest.fixture()
    def edges(self):
        # Big enough that one detection takes visible time, so a burst from
        # many threads overruns the 2-slot queue before the worker drains it.
        graph, _ = planted_partition(8, 25, 0.3, 0.02, seed=2)
        src, dst, _ = graph.edge_arrays()
        return [[int(u), int(v)] for u, v in zip(src, dst)]

    @pytest.fixture()
    def server(self):
        svc = DetectionService(num_workers=1, queue_capacity=2, seed=0)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        yield srv
        srv.stop()

    def test_burst_sees_deterministic_503_with_retry_after(self, server, edges):
        base = server.address
        threads = 8
        per_thread = 3
        outcomes: list[tuple[int, dict, dict]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def submitter():
            barrier.wait()
            for _ in range(per_thread):
                status, doc, headers = _post_graph(base, edges)
                with lock:
                    outcomes.append((status, doc, headers))

        pool = [threading.Thread(target=submitter) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=60)

        assert len(outcomes) == threads * per_thread  # nothing lost
        statuses = {status for status, _, _ in outcomes}
        assert statuses <= {202, 503}, f"unexpected statuses {statuses}"
        accepted = [doc for status, doc, _ in outcomes if status == 202]
        rejected = [
            (doc, headers) for status, doc, headers in outcomes if status == 503
        ]
        # With 24 near-simultaneous submissions, 1 worker and 2 queue slots,
        # backpressure must actually fire.
        assert rejected, "expected at least one 503 from the burst"
        for doc, headers in rejected:
            assert "Retry-After" in headers
            assert float(headers["Retry-After"]) > 0
            assert "error" in doc

        # Every accepted id is unique (no double-claimed slots) ...
        ids = [doc["job_id"] for doc in accepted]
        assert len(ids) == len(set(ids))

        # ... and every accepted job reaches exactly one terminal state.
        deadline = time.monotonic() + 120
        final = {}
        for job_id in ids:
            while time.monotonic() < deadline:
                doc = _get(base, f"/jobs/{job_id}?wait=10")
                if doc["state"] in ("done", "failed", "cancelled"):
                    final[job_id] = doc["state"]
                    break
        assert set(final) == set(ids)
        assert set(final.values()) == {"done"}

        # The server counted each rejection.
        health = _get(base, "/healthz")
        assert health["queue_pending"] == 0

    def test_rejected_submission_succeeds_on_retry(self, server, edges):
        """The 503 contract: backpressure is transient, not a dead end."""
        base = server.address
        # Fill the queue (1 running + 2 waiting).
        for _ in range(3):
            _post_graph(base, edges)
        status, doc, headers = _post_graph(base, edges)
        if status == 503:  # the worker may already have drained one
            deadline = time.monotonic() + 60
            while status == 503 and time.monotonic() < deadline:
                time.sleep(float(headers.get("Retry-After", "1")))
                status, doc, headers = _post_graph(base, edges)
        assert status == 202
        final = _get(base, f"/jobs/{doc['job_id']}?wait=30")
        assert final["state"] == "done"
