"""HTTP-level tests: routes, backpressure 503s, liveness under load."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph import planted_partition
from repro.service import DetectionService, ServiceServer


def _request(base, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            raw = resp.read().decode()
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode()
        status, headers = exc.code, dict(exc.headers)
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError:
        payload = raw
    return status, payload, headers


def _poll_done(base, job_id, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc, _ = _request(base, "GET", f"/jobs/{job_id}")
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} did not finish")


@pytest.fixture()
def edges():
    graph, _ = planted_partition(5, 12, 0.4, 0.02, seed=4)
    src, dst, _ = graph.edge_arrays()
    return [[int(u), int(v)] for u, v in zip(src, dst)]


@pytest.fixture()
def server():
    svc = DetectionService(num_workers=2, queue_capacity=4, seed=0)
    srv = ServiceServer(svc, port=0)
    srv.serve_background()
    yield srv
    srv.stop()


class TestRoutes:
    def test_full_workflow(self, server, edges):
        base = server.address
        status, doc, _ = _request(base, "POST", "/graph", {"edges": edges})
        assert status == 202 and doc["state"] == "pending"
        done = _poll_done(base, doc["job_id"])
        assert done["state"] == "done"
        version = done["result"]["version"]

        status, member, _ = _request(base, "GET", "/membership?vertex=0")
        assert status == 200 and member["version"] == version
        assert isinstance(member["community"], int)

        status, full, _ = _request(base, "GET", "/membership")
        assert len(full["membership"]) == done["result"]["num_vertices"]

        status, doc, _ = _request(
            base, "POST", "/edges",
            {"add": [[0, 13], [1, 25]], "remove": [edges[0]]},
        )
        assert status == 202
        upd = _poll_done(base, doc["job_id"])
        assert upd["state"] == "done"
        assert upd["result"]["base_version"] == version

        status, diff, _ = _request(
            base, "GET", f"/diff?from={version}&to={upd['result']['version']}"
        )
        assert status == 200
        assert diff["from_version"] == version
        assert isinstance(diff["moved_vertices"], list)

        status, versions, _ = _request(base, "GET", "/versions")
        assert [v["version"] for v in versions["versions"]] == [1, 2]
        assert versions["versions"][1]["parent_version"] == 1

    def test_healthz_and_metrics(self, server):
        status, health, _ = _request(server.address, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, text, _ = _request(server.address, "GET", "/metrics")
        assert status == 200
        assert "repro_service_queue_capacity 4" in text

    def test_unknown_routes_404(self, server):
        assert _request(server.address, "GET", "/nope")[0] == 404
        assert _request(server.address, "POST", "/nope")[0] == 404
        assert _request(server.address, "GET", "/jobs/job-none")[0] == 404
        assert _request(server.address, "GET", "/membership")[0] == 404  # no snapshot

    def test_bad_bodies_400(self, server):
        base = server.address
        assert _request(base, "POST", "/graph", {"nope": 1})[0] == 400
        assert _request(base, "POST", "/edges", {"zilch": 1})[0] == 400
        status, doc, _ = _request(base, "POST", "/graph", {"edges": [[1]]})
        assert status == 400 and "expected [u, v]" in doc["error"]
        assert _request(base, "GET", "/diff")[0] == 400

    def test_plain_text_graph_body(self, server):
        base = server.address
        body = "0 1\n1 2\n2 0\n".encode()
        req = urllib.request.Request(
            base + "/graph", data=body, method="POST",
            headers={"Content-Type": "text/plain"},
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            doc = json.loads(resp.read())
        assert resp.status == 202
        assert doc["num_vertices"] == 3 and doc["num_edges"] == 3

    def test_cancel_via_delete(self, server, edges):
        base = server.address
        release = threading.Event()
        # Jam the 2 workers so the next job stays pending and cancellable.
        original = server.service.pool.runner

        def blocking(job, ctx):
            release.wait(10)
            return original(job, ctx)

        server.service.pool.runner = blocking
        try:
            held = [
                _request(base, "POST", "/graph", {"edges": edges})[1]["job_id"]
                for _ in range(2)
            ]
            _, doc, _ = _request(base, "POST", "/graph", {"edges": edges})
            status, cancelled, _ = _request(
                base, "DELETE", f"/jobs/{doc['job_id']}"
            )
            assert status == 200 and cancelled["cancelled"] is True
            assert cancelled["state"] == "cancelled"
        finally:
            release.set()
            server.service.pool.runner = original
            for job_id in held:
                _poll_done(base, job_id)


class TestBackpressureAndLiveness:
    def test_queue_full_returns_503_with_retry_after(self, edges):
        release = threading.Event()

        def runner(job, ctx):
            release.wait(10)
            return {}

        svc = DetectionService(num_workers=1, queue_capacity=1, runner=runner)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        try:
            base = srv.address
            first = _request(base, "POST", "/graph", {"edges": edges})
            assert first[0] == 202
            deadline = time.monotonic() + 5
            while not svc.pool.running_jobs:  # worker picked the job up
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert _request(base, "POST", "/graph", {"edges": edges})[0] == 202
            status, doc, headers = _request(
                base, "POST", "/graph", {"edges": edges}
            )
            assert status == 503
            assert "queue full" in doc["error"]
            assert headers.get("Retry-After") == "1"
            assert "repro_service_jobs_rejected 1" in svc.metrics_text()
        finally:
            release.set()
            srv.stop()

    def test_healthz_and_metrics_respond_during_inflight_job(self, edges):
        """The ISSUE acceptance bar: liveness endpoints never block on jobs."""
        release = threading.Event()
        entered = threading.Event()

        def runner(job, ctx):
            entered.set()
            release.wait(10)
            return {}

        svc = DetectionService(num_workers=1, runner=runner)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        try:
            base = srv.address
            _request(base, "POST", "/graph", {"edges": edges})
            assert entered.wait(5)
            t0 = time.monotonic()
            status, health, _ = _request(base, "GET", "/healthz")
            assert status == 200
            assert health["jobs_running"] == 1
            status, metrics, _ = _request(base, "GET", "/metrics")
            assert status == 200
            assert "repro_service_jobs_running 1" in metrics
            assert time.monotonic() - t0 < 2  # answered while the job ran
        finally:
            release.set()
            srv.stop()

    def test_shutdown_endpoint_stops_server(self, edges):
        svc = DetectionService(num_workers=1)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        base = srv.address
        status, doc, _ = _request(base, "POST", "/shutdown")
        assert status == 202
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                _request(base, "GET", "/healthz")
            except (ConnectionError, OSError):
                break
            time.sleep(0.05)
        assert svc.health()["status"] == "shutting_down"
        srv.stop()  # idempotent


def test_submissions_after_close_get_503(edges):
    svc = DetectionService(num_workers=1)
    srv = ServiceServer(svc, port=0)
    srv.serve_background()
    try:
        svc.queue.close()
        status, doc, _ = _request(srv.address, "POST", "/graph", {"edges": edges})
        assert status == 503
        assert "closed" in doc["error"]
    finally:
        srv.stop()
