"""Long-poll semantics: queue-level wait_terminal + HTTP ``?wait=``.

Every test here is about *wakeups*: a long-poll waiter must return promptly
when its job reaches done/failed/cancelled (including cancellation arriving
mid-wait), must time out cleanly when nothing happens, and must never hang
on queue shutdown.  The timing assertions use a coarse bound (well under
the requested wait) -- the point is "woke via the condition variable, not
via timeout", not a latency SLO.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph import planted_partition
from repro.service import DetectionService, ServiceServer
from repro.service.jobs import Job, JobQueue


def _request(base, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


@pytest.fixture()
def edges():
    graph, _ = planted_partition(4, 10, 0.5, 0.05, seed=1)
    src, dst, _ = graph.edge_arrays()
    return [[int(u), int(v)] for u, v in zip(src, dst)]


class TestWaitTerminal:
    """JobQueue.wait_terminal, no HTTP involved."""

    def test_already_terminal_returns_immediately(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        claimed = q.claim(timeout=1)
        q.finalize(claimed, state="done", result={"ok": True})
        t0 = time.monotonic()
        out = q.wait_terminal(job.job_id, timeout=5.0)
        assert time.monotonic() - t0 < 0.5
        assert out.state == "done"

    def test_unknown_job_raises(self):
        q = JobQueue(capacity=4)
        with pytest.raises(KeyError):
            q.wait_terminal("nope", timeout=0.1)

    def test_timeout_returns_nonterminal_job(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        t0 = time.monotonic()
        out = q.wait_terminal(job.job_id, timeout=0.2)
        assert 0.15 <= time.monotonic() - t0 < 2.0
        assert out.state == "pending"

    def test_wakes_on_finalize(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        claimed = q.claim(timeout=1)
        results = {}

        def waiter():
            t0 = time.monotonic()
            out = q.wait_terminal(job.job_id, timeout=30.0)
            results["elapsed"] = time.monotonic() - t0
            results["state"] = out.state

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        q.finalize(claimed, state="failed", error="boom")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results["state"] == "failed"
        assert results["elapsed"] < 5.0  # woke via notify, not the 30s timeout

    def test_wakes_on_pending_cancellation(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        results = {}

        def waiter():
            out = q.wait_terminal(job.job_id, timeout=30.0)
            results["state"] = out.state

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        assert q.cancel(job.job_id) is True
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results["state"] == "cancelled"

    def test_close_releases_waiters(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        done = threading.Event()

        def waiter():
            q.wait_terminal(job.job_id, timeout=30.0)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        q.close(cancel_pending=True)
        assert done.wait(timeout=5.0)
        thread.join(timeout=5)

    def test_many_waiters_all_wake(self):
        q = JobQueue(capacity=4)
        job = q.submit(Job(kind="detect"))
        claimed = q.claim(timeout=1)
        states = []
        lock = threading.Lock()

        def waiter():
            out = q.wait_terminal(job.job_id, timeout=30.0)
            with lock:
                states.append(out.state)

        threads = [threading.Thread(target=waiter) for _ in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        q.finalize(claimed, state="done", result={})
        for t in threads:
            t.join(timeout=5)
        assert states == ["done"] * 8


class TestHttpLongPoll:
    @pytest.fixture()
    def server(self):
        svc = DetectionService(num_workers=1, queue_capacity=8, seed=0)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        yield srv
        srv.stop()

    def test_wait_returns_done_job(self, server, edges):
        base = server.address
        status, doc = _request(base, "POST", "/graph", {"edges": edges})
        assert status == 202
        t0 = time.monotonic()
        status, job = _request(base, "GET", f"/jobs/{doc['job_id']}?wait=20")
        elapsed = time.monotonic() - t0
        assert status == 200
        assert job["state"] == "done"
        assert elapsed < 15.0  # long poll returned on completion, not expiry

    def test_wait_zero_is_plain_status(self, server, edges):
        base = server.address
        status, doc = _request(base, "POST", "/graph", {"edges": edges})
        status, job = _request(base, "GET", f"/jobs/{doc['job_id']}?wait=0")
        assert status == 200
        assert job["state"] in ("pending", "running", "done")

    def test_invalid_wait_is_400(self, server, edges):
        base = server.address
        _, doc = _request(base, "POST", "/graph", {"edges": edges})
        status, _ = _request(base, "GET", f"/jobs/{doc['job_id']}?wait=banana")
        assert status == 400
        status, _ = _request(base, "GET", f"/jobs/{doc['job_id']}?wait=-1")
        assert status == 400

    def test_wait_unknown_job_is_404(self, server):
        status, _ = _request(server.address, "GET", "/jobs/nope?wait=1")
        assert status == 404

    def test_cancellation_mid_wait_wakes_waiter(self, server, edges):
        """A DELETE arriving while a long poll is parked must wake it."""
        base = server.address
        # Occupy the single worker with one job, then long-poll a queued one.
        _request(base, "POST", "/graph", {"edges": edges})
        status, doc = _request(base, "POST", "/graph", {"edges": edges})
        assert status == 202
        job_id = doc["job_id"]
        results = {}

        def waiter():
            t0 = time.monotonic()
            results["response"] = _request(base, "GET", f"/jobs/{job_id}?wait=20")
            results["elapsed"] = time.monotonic() - t0

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.15)
        status, cancelled = _request(base, "DELETE", f"/jobs/{job_id}")
        assert status == 200
        thread.join(timeout=10)
        assert not thread.is_alive()
        status, job = results["response"]
        assert status == 200
        # The job was either still queued (cancelled) or had already been
        # picked up and finished (done) -- both are terminal wakeups; the
        # assertion is that the waiter did not sit out the full 20s.
        assert job["state"] in ("cancelled", "done")
        assert results["elapsed"] < 15.0


class TestRequestHistograms:
    """Per-endpoint duration histograms surfaced on /metrics."""

    @pytest.fixture()
    def server(self):
        svc = DetectionService(num_workers=1, queue_capacity=8, seed=0)
        srv = ServiceServer(svc, port=0)
        srv.serve_background()
        yield srv
        srv.stop()

    def _scrape(self, base):
        req = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.read().decode()  # Prometheus exposition is plain text

    def test_histograms_appear_per_endpoint(self, server, edges):
        base = server.address
        _request(base, "POST", "/graph", {"edges": edges})
        _request(base, "GET", "/healthz")
        # The duration observation lands *after* the response is flushed, so
        # an immediate scrape can race it; retry briefly.
        for _ in range(50):
            text = self._scrape(base)
            if 'endpoint="GET /healthz"' in text:
                break
            time.sleep(0.02)
        assert "repro_service_request_duration_seconds_bucket" in text
        assert 'endpoint="POST /graph"' in text
        assert 'endpoint="GET /healthz"' in text
        assert 'le="+Inf"' in text
        assert "repro_service_request_duration_seconds_count" in text
        assert "repro_service_request_duration_seconds_sum" in text

    def test_job_ids_collapse_to_one_series(self, server, edges):
        base = server.address
        _, doc = _request(base, "POST", "/graph", {"edges": edges})
        _request(base, "GET", f"/jobs/{doc['job_id']}")
        _, doc2 = _request(base, "POST", "/graph", {"edges": edges})
        _request(base, "GET", f"/jobs/{doc2['job_id']}")
        for _ in range(50):
            text = self._scrape(base)
            if 'endpoint="GET /jobs/:id"' in text:
                break
            time.sleep(0.02)
        # Distinct job ids must not fan out into distinct label values.
        assert 'endpoint="GET /jobs/:id"' in text
        assert doc["job_id"] not in text

    def test_bucket_counts_are_cumulative(self, server):
        base = server.address
        for _ in range(5):
            _request(base, "GET", "/healthz")
        for _ in range(50):
            text = self._scrape(base)
            if 'endpoint="GET /healthz"' in text:
                break
            time.sleep(0.02)
        counts = []
        for line in text.splitlines():
            if (
                line.startswith("repro_service_request_duration_seconds_bucket")
                and 'endpoint="GET /healthz"' in line
            ):
                counts.append(int(float(line.rsplit(" ", 1)[1])))
        assert counts, "no bucket series for GET /healthz"
        assert counts == sorted(counts)  # cumulative by definition
