"""Tests for the job model and the bounded priority queue."""

import threading
import time

import pytest

from repro.service import (
    Job,
    JobQueue,
    JobState,
    QueueClosedError,
    QueueFullError,
)


def make_job(**kwargs):
    kwargs.setdefault("kind", "detect")
    return Job(**kwargs)


class TestJob:
    def test_ids_are_unique(self):
        a, b = make_job(), make_job()
        assert a.job_id != b.job_id

    def test_validation(self):
        with pytest.raises(ValueError):
            make_job(timeout=0)
        with pytest.raises(ValueError):
            make_job(max_retries=-1)
        with pytest.raises(ValueError):
            make_job(backoff_base=0)
        with pytest.raises(ValueError):
            make_job(backoff_factor=0.5)

    def test_backoff_is_exponential_and_capped(self):
        job = make_job(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35)
        delays = []
        for attempts in (1, 2, 3, 4):
            job.attempts = attempts
            delays.append(job.backoff_delay())
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.35),  # 0.4 capped
            pytest.approx(0.35),
        ]

    def test_as_dict_is_json_shaped(self):
        job = make_job(priority=3, timeout=1.5)
        doc = job.as_dict()
        assert doc["state"] == JobState.PENDING
        assert doc["priority"] == 3
        assert doc["timeout_s"] == 1.5
        assert doc["result"] is None and doc["error"] is None


class TestJobQueue:
    def test_backpressure_raises_queue_full(self):
        q = JobQueue(capacity=2)
        q.submit(make_job())
        q.submit(make_job())
        with pytest.raises(QueueFullError):
            q.submit(make_job())
        # Draining one job frees a slot.
        assert q.claim(timeout=0) is not None
        q.submit(make_job())

    def test_priority_then_fifo_order(self):
        q = JobQueue(capacity=8)
        low = q.submit(make_job(priority=20))
        first = q.submit(make_job(priority=1))
        second = q.submit(make_job(priority=1))
        assert q.claim(timeout=0) is first
        assert q.claim(timeout=0) is second
        assert q.claim(timeout=0) is low

    def test_claim_marks_running_and_counts_attempt(self):
        q = JobQueue(capacity=2)
        q.submit(make_job())
        job = q.claim(timeout=0)
        assert job.state == JobState.RUNNING
        assert job.attempts == 1
        assert job.started_at is not None
        assert q.pending_count == 0

    def test_claim_times_out_empty(self):
        q = JobQueue(capacity=2)
        assert q.claim(timeout=0.01) is None

    def test_claim_blocks_until_submit(self):
        q = JobQueue(capacity=2)
        got = []

        def claimer():
            got.append(q.claim(timeout=5))

        t = threading.Thread(target=claimer)
        t.start()
        time.sleep(0.05)
        submitted = q.submit(make_job())
        t.join(timeout=5)
        assert got == [submitted]

    def test_cancel_pending_is_immediate_and_skipped(self):
        q = JobQueue(capacity=4)
        victim = q.submit(make_job())
        survivor = q.submit(make_job())
        assert q.cancel(victim.job_id) is True
        assert victim.state == JobState.CANCELLED
        assert victim.error == "cancelled while queued"
        assert q.pending_count == 1
        assert q.claim(timeout=0) is survivor

    def test_cancel_running_sets_flag_only(self):
        q = JobQueue(capacity=2)
        q.submit(make_job())
        job = q.claim(timeout=0)
        assert q.cancel(job.job_id) is True
        assert job.state == JobState.RUNNING  # the worker finalizes it
        assert job.cancel_event.is_set()

    def test_cancel_terminal_returns_false_unknown_raises(self):
        q = JobQueue(capacity=2)
        job = q.submit(make_job())
        q.cancel(job.job_id)
        assert q.cancel(job.job_id) is False
        with pytest.raises(KeyError):
            q.cancel("job-nope")

    def test_requeue_with_delay_is_invisible_until_due(self):
        q = JobQueue(capacity=2)
        q.submit(make_job())
        job = q.claim(timeout=0)
        q.requeue(job, delay=0.15)
        assert q.claim(timeout=0) is None  # still backing off
        again = q.claim(timeout=2)
        assert again is job
        assert again.attempts == 2

    def test_requeue_bypasses_capacity(self):
        q = JobQueue(capacity=1)
        q.submit(make_job())
        job = q.claim(timeout=0)
        q.submit(make_job())  # the single slot is taken again
        q.requeue(job)  # must not raise QueueFullError
        assert q.pending_count == 2

    def test_get_and_forget(self):
        q = JobQueue(capacity=2)
        job = q.submit(make_job())
        assert q.get(job.job_id) is job
        with pytest.raises(ValueError):
            q.forget(job.job_id)  # not terminal yet
        q.cancel(job.job_id)
        q.forget(job.job_id)
        with pytest.raises(KeyError):
            q.get(job.job_id)

    def test_close_cancels_pending_and_rejects_submits(self):
        q = JobQueue(capacity=4)
        job = q.submit(make_job())
        q.close()
        assert job.state == JobState.CANCELLED
        assert q.claim(timeout=0) is None
        with pytest.raises(QueueClosedError):
            q.submit(make_job())

    def test_close_wakes_blocked_claimers(self):
        q = JobQueue(capacity=2)
        results = []

        def claimer():
            results.append(q.claim(timeout=10))

        t = threading.Thread(target=claimer)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5)
        assert results == [None]
