"""Tests for the versioned snapshot store and label-aligned diffs."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.service import SnapshotStore
from repro.service.store import _align_labels


def line_graph(n):
    src = np.arange(n - 1)
    return Graph.from_edges(src, src + 1, num_vertices=n)


class TestSnapshotStore:
    def test_versions_are_monotonic(self):
        store = SnapshotStore()
        g = line_graph(4)
        m = np.zeros(4, dtype=np.int64)
        assert store.put(g, m, 0.1, kind="full").version == 1
        assert store.put(g, m, 0.2, kind="update", parent_version=1).version == 2
        assert store.latest_version() == 2

    def test_membership_size_validated(self):
        store = SnapshotStore()
        with pytest.raises(ValueError):
            store.put(line_graph(4), np.zeros(3, dtype=np.int64), 0.0, kind="full")

    def test_get_latest_and_point_in_time(self):
        store = SnapshotStore()
        g = line_graph(3)
        store.put(g, np.array([0, 0, 1]), 0.1, kind="full")
        store.put(g, np.array([0, 1, 1]), 0.2, kind="update")
        assert store.get().version == 2
        assert store.membership(1) == 1
        assert store.membership(1, version=1) == 0
        assert list(store.membership(version=1)) == [0, 0, 1]

    def test_get_errors(self):
        store = SnapshotStore()
        with pytest.raises(KeyError):
            store.get()
        store.put(line_graph(2), np.zeros(2, dtype=np.int64), 0.0, kind="full")
        with pytest.raises(KeyError, match="not retained"):
            store.get(99)
        with pytest.raises(KeyError, match="vertex"):
            store.membership(5)

    def test_capacity_evicts_oldest(self):
        store = SnapshotStore(capacity=2)
        g = line_graph(2)
        m = np.zeros(2, dtype=np.int64)
        for _ in range(4):
            store.put(g, m, 0.0, kind="full")
        assert [v["version"] for v in store.versions()] == [3, 4]
        with pytest.raises(KeyError):
            store.get(1)

    def test_diff_counts_growth_and_moves(self):
        store = SnapshotStore()
        store.put(line_graph(6), np.array([0, 0, 0, 1, 1, 1]), 0.3, kind="full")
        # Vertex 2 defects to community 1's image; two vertices appended.
        store.put(
            line_graph(8), np.array([0, 0, 1, 1, 1, 1, 2, 2]), 0.4,
            kind="update", parent_version=1,
        )
        d = store.diff(1, 2)
        assert d.num_added == 2
        assert list(d.added_vertices) == [6, 7]
        assert d.num_moved == 1
        assert list(d.moved_vertices) == [2]
        assert d.modularity_delta == pytest.approx(0.1)
        meta = d.meta()
        assert meta["num_moved"] == 1 and meta["num_added"] == 2


class TestAlignLabels:
    def test_pure_relabeling_is_zero_churn(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([7, 7, 3, 3, 9])
        assert _align_labels(a, b).size == 0

    def test_single_mover_found(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([5, 5, 8, 8, 8, 8])  # vertex 2 defected to 1's image
        assert list(_align_labels(a, b)) == [2]

    def test_empty_inputs(self):
        assert _align_labels(np.empty(0, int), np.empty(0, int)).size == 0

    def test_split_community_keeps_plurality(self):
        # Community 0 splits 3-vs-2: the plurality side stays, minority moved.
        a = np.zeros(5, dtype=np.int64)
        b = np.array([1, 1, 1, 2, 2])
        assert list(_align_labels(a, b)) == [3, 4]
