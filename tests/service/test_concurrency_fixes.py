"""Threaded regression tests for the races the concurrency profile found.

Each test here pins one of the fixes triaged out of
``repro check --profile concurrency`` on src/:

* ``Tracer(threadsafe=True)`` — counter read-modify-write and the event
  seq/append used to race when a shared tracer was hit from worker threads.
* ``JobQueue.finalize`` — terminal job transitions used to write
  state/error/finished_at outside the queue lock, racing ``cancel``/``close``.
"""

import threading

from repro.observability import Tracer
from repro.service import DetectionService, JobQueue, JobState
from repro.service.jobs import Job


class TestThreadsafeTracer:
    def test_counter_increments_are_not_lost(self):
        from repro.observability import NullSink

        tracer = Tracer(threadsafe=True, buffer=False, sink=NullSink())
        threads, per_thread = 8, 2000

        def bump():
            for _ in range(per_thread):
                tracer.add_counter("hits", 1.0)

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert tracer.counters["hits"] == float(threads * per_thread)
        assert tracer.num_emitted == threads * per_thread

    def test_event_seq_unique_under_contention(self):
        tracer = Tracer(threadsafe=True)

        def emit_many():
            for i in range(500):
                tracer.emit("mark", "tick", i=i)

        workers = [threading.Thread(target=emit_many) for _ in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        seqs = [ev.seq for ev in tracer.events]
        assert len(seqs) == len(set(seqs)) == 2000

    def test_default_tracer_stays_lockless(self):
        assert Tracer()._lock is None
        assert Tracer(threadsafe=True)._lock is not None


class TestFinalize:
    def test_finalize_moves_running_job_to_done(self):
        q = JobQueue()
        job = Job(kind="detect")
        q.submit(job)
        claimed = q.claim(timeout=1)
        assert claimed is job
        assert q.finalize(job, JobState.DONE, result={"q": 0.5}) is True
        assert job.state == JobState.DONE
        assert job.result == {"q": 0.5}
        assert job.finished_at is not None

    def test_finalize_rejects_non_terminal_state(self):
        import pytest

        q = JobQueue()
        job = Job(kind="detect")
        with pytest.raises(ValueError, match="terminal"):
            q.finalize(job, JobState.RUNNING)

    def test_finalize_is_idempotent_first_writer_wins(self):
        q = JobQueue()
        job = Job(kind="detect")
        q.submit(job)
        q.claim(timeout=1)
        assert q.finalize(job, JobState.FAILED, error="boom") is True
        # a second terminal transition must not rewrite anything
        assert q.finalize(job, JobState.DONE, result={"q": 1.0}) is False
        assert job.state == JobState.FAILED
        assert job.error == "boom"
        assert job.result is None

    def test_racing_finalizers_apply_exactly_once(self):
        q = JobQueue()
        job = Job(kind="detect")
        q.submit(job)
        q.claim(timeout=1)
        barrier = threading.Barrier(8)
        wins = []

        def racer(i):
            barrier.wait()
            if q.finalize(job, JobState.DONE, result={"winner": i}):
                wins.append(i)

        workers = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(wins) == 1
        assert job.result == {"winner": wins[0]}


class TestServiceTracerSharing:
    def test_concurrent_jobs_share_tracer_without_losing_counts(self):
        """Many runner threads hammer the service-wide tracer at once.

        Runners get per-job tracers for spans, but counters roll up on the
        shared ``svc.tracer`` — the object the threadsafe fix exists for.
        """
        box = {}
        started = threading.Barrier(4, timeout=10)

        def runner(job, ctx):
            started.wait()
            for _ in range(300):
                box["svc"].tracer.add_counter("work", 1.0)
            return {"ok": True}

        svc = DetectionService(runner=runner, num_workers=4)
        box["svc"] = svc
        try:
            jobs = [svc.submit_graph(object()) for _ in range(4)]
            for job in jobs:
                svc.wait(job.job_id, timeout=10)
            assert all(j.state == JobState.DONE for j in jobs)
            assert svc.tracer.counters["work"] == 4 * 300.0
            # the bookkeeping counters went through the same lock
            assert svc.tracer.counters["service_jobs_completed"] == 4.0
        finally:
            svc.close()
