"""Unit tests for the accumulating open-addressing hash table."""

import numpy as np
import pytest

from repro.hashing import EMPTY_KEY, EdgeHashTable


def keys_of(*vals) -> np.ndarray:
    return np.array(vals, dtype=np.uint64)


class TestBasics:
    def test_insert_and_lookup(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(1, 2, 3), np.array([1.0, 2.0, 3.0]))
        assert len(t) == 3
        assert t.lookup(keys_of(2, 3, 1)).tolist() == [2.0, 3.0, 1.0]

    def test_missing_key_default(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(1), np.array([1.0]))
        assert t.lookup(keys_of(99))[0] == 0.0
        assert t.lookup(keys_of(99), default=-1.0)[0] == -1.0

    def test_accumulate_same_key(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(7), np.array([1.5]))
        t.insert_accumulate(keys_of(7), np.array([2.5]))
        assert len(t) == 1
        assert t.lookup(keys_of(7))[0] == 4.0

    def test_intra_batch_duplicates_coalesce(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(5, 5, 5), np.array([1.0, 2.0, 3.0]))
        assert len(t) == 1
        assert t.lookup(keys_of(5))[0] == 6.0

    def test_empty_batch_noop(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(np.empty(0, dtype=np.uint64), np.empty(0))
        assert len(t) == 0

    def test_clear(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(1, 2), np.array([1.0, 1.0]))
        t.clear()
        assert len(t) == 0
        assert t.lookup(keys_of(1))[0] == 0.0

    def test_items_match_inserts(self):
        t = EdgeHashTable(64)
        k = keys_of(*range(10))
        w = np.arange(10, dtype=np.float64)
        t.insert_accumulate(k, w)
        got_k, got_w = t.items()
        order = np.argsort(got_k)
        assert np.array_equal(got_k[order], k)
        assert np.allclose(got_w[order], w)

    def test_contains(self):
        t = EdgeHashTable(16)
        t.insert_accumulate(keys_of(3, 4), np.array([0.0, 1.0]))
        got = t.contains(keys_of(3, 4, 5))
        assert got.tolist() == [True, True, False]

    def test_mismatched_lengths_raise(self):
        t = EdgeHashTable(16)
        with pytest.raises(ValueError):
            t.insert_accumulate(keys_of(1, 2), np.array([1.0]))

    def test_empty_sentinel_rejected(self):
        t = EdgeHashTable(16)
        with pytest.raises(ValueError, match="sentinel"):
            t.insert_accumulate(np.array([EMPTY_KEY]), np.array([1.0]))


class TestGrowthAndLoadFactor:
    def test_auto_grow(self):
        t = EdgeHashTable(8, max_load_factor=0.5)
        t.insert_accumulate(np.arange(100, dtype=np.uint64), np.ones(100))
        assert len(t) == 100
        assert t.load_factor <= 0.5
        assert np.allclose(t.lookup(np.arange(100, dtype=np.uint64)), 1.0)

    def test_no_grow_overflow_raises(self):
        t = EdgeHashTable(8, max_load_factor=1.0, auto_grow=False)
        with pytest.raises(OverflowError):
            t.insert_accumulate(np.arange(20, dtype=np.uint64), np.ones(20))

    def test_no_grow_within_capacity_ok(self):
        t = EdgeHashTable(32, max_load_factor=1.0, auto_grow=False)
        t.insert_accumulate(np.arange(32, dtype=np.uint64), np.ones(32))
        assert len(t) == 32  # completely full table still answers lookups
        assert np.allclose(t.lookup(np.arange(32, dtype=np.uint64)), 1.0)
        assert not t.contains(keys_of(999))[0]

    def test_rehash_preserves_contents(self):
        t = EdgeHashTable(8, max_load_factor=0.25)
        k = (np.arange(50, dtype=np.uint64) * np.uint64(7919)) + np.uint64(1)
        w = np.linspace(0.1, 5.0, 50)
        t.insert_accumulate(k, w)
        assert np.allclose(t.lookup(k), w)

    def test_bad_load_factor_raises(self):
        with pytest.raises(ValueError):
            EdgeHashTable(8, max_load_factor=0.0)
        with pytest.raises(ValueError):
            EdgeHashTable(8, max_load_factor=2.5)


class TestCollisions:
    def test_forced_collisions_resolved(self):
        # Many keys into a small fixed-capacity table: heavy probing.
        t = EdgeHashTable(64, max_load_factor=0.95, auto_grow=False)
        rng = np.random.default_rng(0)
        k = rng.choice(2**50, size=60, replace=False).astype(np.uint64)
        w = rng.random(60)
        t.insert_accumulate(k, w)
        assert np.allclose(t.lookup(k), w)
        assert t.probe_count > 60  # probing actually happened

    def test_adversarial_same_bin_keys(self):
        """Keys engineered to share a home bin chain correctly."""
        t = EdgeHashTable(1024, hash_function=lambda keys, m: np.zeros(len(keys), dtype=np.int64))
        k = np.arange(1, 33, dtype=np.uint64)
        w = np.ones(32)
        t.insert_accumulate(k, w)
        assert np.allclose(t.lookup(k), w)
        bins = t.home_bins()
        assert np.all(bins == 0)

    def test_interleaved_insert_lookup(self):
        t = EdgeHashTable(16)
        rng = np.random.default_rng(4)
        model: dict[int, float] = {}
        for _ in range(20):
            k = rng.integers(1, 50, size=8).astype(np.uint64)
            w = rng.random(8)
            t.insert_accumulate(k, w)
            for kk, ww in zip(k.tolist(), w.tolist()):
                model[kk] = model.get(kk, 0.0) + ww
            probe = np.array(sorted(model), dtype=np.uint64)
            expected = np.array([model[int(x)] for x in probe])
            assert np.allclose(t.lookup(probe), expected)
        assert len(t) == len(model)


@pytest.mark.parametrize("hash_name", ["fibonacci", "linear_congruential", "bitwise", "concatenated"])
def test_all_hash_families_work_in_table(hash_name):
    t = EdgeHashTable(32, hash_function=hash_name)
    k = (np.arange(200, dtype=np.uint64) << np.uint64(16)) | np.uint64(3)
    w = np.full(200, 0.5)
    t.insert_accumulate(k, w)
    assert len(t) == 200
    assert np.allclose(t.lookup(k), 0.5)
