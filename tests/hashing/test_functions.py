"""Tests for hash functions and key packing (Eqs. 5-6)."""

import numpy as np
import pytest

from repro.hashing import (
    HASH_FUNCTIONS,
    bitwise_hash,
    concatenated_hash,
    fibonacci_hash,
    get_hash_function,
    linear_congruential_hash,
    pack_key,
    unpack_key,
)


class TestPackKey:
    def test_roundtrip_default_shift(self):
        rng = np.random.default_rng(0)
        t1 = rng.integers(0, 2**31, 1000).astype(np.uint64)
        t2 = rng.integers(0, 2**31, 1000).astype(np.uint64)
        k = pack_key(t1, t2)
        a, b = unpack_key(k)
        assert np.array_equal(a, t1.astype(np.int64))
        assert np.array_equal(b, t2.astype(np.int64))

    def test_roundtrip_paper_shift16(self):
        t1 = np.array([0, 1, 65535], dtype=np.uint64)
        t2 = np.array([65535, 0, 1], dtype=np.uint64)
        k = pack_key(t1, t2, shift=16)
        a, b = unpack_key(k, shift=16)
        assert np.array_equal(a, t1.astype(np.int64))
        assert np.array_equal(b, t2.astype(np.int64))

    def test_paper_formula_example(self):
        # Eq. 5: f(t1, t2) = (t1 << 16) | t2
        k = pack_key(np.array([3], dtype=np.uint64), np.array([5], dtype=np.uint64), shift=16)
        assert int(k[0]) == (3 << 16) | 5

    def test_overflow_t2_raises(self):
        with pytest.raises(ValueError, match="t2"):
            pack_key(np.array([0], dtype=np.uint64), np.array([1 << 16], dtype=np.uint64), shift=16)

    def test_overflow_t1_raises(self):
        with pytest.raises(ValueError, match="t1"):
            pack_key(np.array([1 << 48], dtype=np.uint64), np.array([0], dtype=np.uint64), shift=16)

    def test_bad_shift_raises(self):
        with pytest.raises(ValueError):
            pack_key(np.array([0], dtype=np.uint64), np.array([0], dtype=np.uint64), shift=0)

    def test_negative_ids_raise(self):
        with pytest.raises(ValueError, match="negative ids"):
            pack_key(np.array([-1], dtype=np.int64), np.array([0], dtype=np.int64))
        with pytest.raises(ValueError, match="t2 holds negative"):
            pack_key(np.array([3], dtype=np.int64), np.array([-7], dtype=np.int64))

    def test_negative_error_names_offender(self):
        with pytest.raises(ValueError, match=r"min -9"):
            pack_key(np.array([-9, 2], dtype=np.int64), np.array([0, 0], dtype=np.int64))

    def test_negative_float_ids_raise(self):
        # Regression: float arrays used to bypass the signedinteger-only
        # negativity check and wrap silently under the uint64 cast.
        with pytest.raises(ValueError, match="t1 holds negative"):
            pack_key(np.array([-1.0]), np.array([0.0]))
        with pytest.raises(ValueError, match="t2 holds negative"):
            pack_key(np.array([3.0]), np.array([-7.0]))

    def test_fractional_float_ids_raise(self):
        with pytest.raises(ValueError, match="non-integral float"):
            pack_key(np.array([1.5]), np.array([0.0]))

    def test_integral_float_ids_match_int_packing(self):
        ints = pack_key(np.array([7, 9], dtype=np.int64), np.array([3, 4], dtype=np.int64))
        floats = pack_key(np.array([7.0, 9.0]), np.array([3.0, 4.0]))
        np.testing.assert_array_equal(ints, floats)

    def test_huge_float_ids_raise(self):
        with pytest.raises(ValueError, match=r"2\^64"):
            pack_key(np.array([2.0 ** 64]), np.array([0.0]), shift=1)

    def test_non_numeric_dtype_raises(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            pack_key(np.array(["3"]), np.array(["4"]))

    def test_int32_max_boundary_roundtrips(self):
        # 2^31 - 1 is the largest id an int32 pipeline can produce; it must
        # pack and unpack exactly on both sides of the default 32-bit field.
        v = np.array([(1 << 31) - 1], dtype=np.int32)
        t1, t2 = unpack_key(pack_key(v, v))
        assert int(t1[0]) == (1 << 31) - 1
        assert int(t2[0]) == (1 << 31) - 1

    def test_uint32_width_boundary(self):
        # 2^32 - 1 still fits the default low field; 2^32 must be rejected,
        # not wrapped into field 0.
        top = np.array([(1 << 32) - 1], dtype=np.uint64)
        t1, t2 = unpack_key(pack_key(np.array([0], dtype=np.uint64), top))
        assert int(t2[0]) == (1 << 32) - 1
        with pytest.raises(ValueError, match="t2 does not fit"):
            pack_key(np.array([0], dtype=np.uint64), np.array([1 << 32], dtype=np.uint64))

    def test_empty_sentinel_collision_raises(self):
        t1 = np.array([(1 << 32) - 1], dtype=np.uint64)
        t2 = np.array([(1 << 32) - 1], dtype=np.uint64)
        with pytest.raises(ValueError, match="EMPTY sentinel"):
            pack_key(t1, t2)
        # One bit below the sentinel is a legal key.
        ok = pack_key(t1, t2 - np.uint64(1))
        assert int(ok[0]) == 0xFFFFFFFFFFFFFFFE

    def test_empty_sentinel_collision_shift16(self):
        with pytest.raises(ValueError, match="EMPTY sentinel"):
            pack_key(
                np.array([(1 << 48) - 1], dtype=np.uint64),
                np.array([(1 << 16) - 1], dtype=np.uint64),
                shift=16,
            )

    def test_overflow_message_reports_values(self):
        with pytest.raises(ValueError, match=r"max 65536 >= 65536.*shift=16"):
            pack_key(
                np.array([0], dtype=np.uint64),
                np.array([1 << 16], dtype=np.uint64),
                shift=16,
            )

    def test_injective(self):
        rng = np.random.default_rng(1)
        t1 = rng.integers(0, 5000, 20000).astype(np.uint64)
        t2 = rng.integers(0, 5000, 20000).astype(np.uint64)
        keys = pack_key(t1, t2)
        pairs = set(zip(t1.tolist(), t2.tolist()))
        assert np.unique(keys).size == len(pairs)


@pytest.mark.parametrize("name", sorted(HASH_FUNCTIONS))
class TestHashFamilies:
    def test_in_range(self, name):
        fn = get_hash_function(name)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**63, 5000).astype(np.uint64)
        for m in (7, 64, 1000, 4096):
            bins = fn(keys, m)
            assert bins.min() >= 0
            assert bins.max() < m

    def test_deterministic(self, name):
        fn = get_hash_function(name)
        keys = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
        assert np.array_equal(fn(keys, 512), fn(keys, 512))

    def test_empty_input(self, name):
        fn = get_hash_function(name)
        out = fn(np.empty(0, dtype=np.uint64), 64)
        assert out.size == 0


class TestDistributionQuality:
    """Fibonacci and LCG must spread packed sequential keys; the weak hashes
    exist to lose (paper §V-C1)."""

    @staticmethod
    def _packed_sequential_keys(n=20000):
        # Edge keys of a 1D-partitioned graph: low entropy in both halves.
        t1 = np.arange(n, dtype=np.uint64) % 997
        t2 = np.arange(n, dtype=np.uint64) % 1009
        return pack_key(t1, t2)

    def test_fibonacci_spreads_sequential_ids(self):
        keys = np.arange(10000, dtype=np.uint64)
        bins = fibonacci_hash(keys, 1024)
        counts = np.bincount(bins, minlength=1024)
        # near-uniform: max occupancy close to mean
        assert counts.max() <= 3 * counts.mean()

    def test_fibonacci_beats_concatenated_on_clustered_keys(self):
        keys = self._packed_sequential_keys()
        m = 4096
        fib = np.bincount(fibonacci_hash(keys, m), minlength=m)
        cat = np.bincount(concatenated_hash(keys, m), minlength=m)
        assert fib.max() < cat.max()

    def test_lcg_reasonable(self):
        keys = self._packed_sequential_keys()
        m = 4096
        lcg = np.bincount(linear_congruential_hash(keys, m), minlength=m)
        assert lcg.max() <= 6 * lcg.mean()

    def test_scaling_exact_against_python_ints(self):
        """The 32-bit-halves multiply-high must match exact integer math."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**63, 200).astype(np.uint64)
        m = 1000
        got = fibonacci_hash(keys, m)
        mult = 0x9E3779B97F4A7C15
        for k, b in zip(keys.tolist(), got.tolist()):
            h = (int(k) * mult) % (1 << 64)
            exact = (h * m) >> 64
            assert abs(b - exact) <= 1  # 32-bit split may round down by 1

    def test_num_bins_too_large_raises(self):
        with pytest.raises(ValueError):
            fibonacci_hash(np.array([1], dtype=np.uint64), 2**33)


def test_unknown_hash_name_raises():
    with pytest.raises(ValueError, match="unknown hash"):
        get_hash_function("nope")
