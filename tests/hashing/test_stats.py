"""Tests for hash-table bin statistics (Fig. 6 machinery)."""

import numpy as np
import pytest

from repro.hashing import (
    EdgeHashTable,
    bin_lengths,
    load_factor_sweep,
    per_thread_stats,
    table_stats,
)


@pytest.fixture
def keys():
    rng = np.random.default_rng(0)
    return rng.choice(2**40, size=4096, replace=False).astype(np.uint64)


class TestBinLengths:
    def test_total_is_preserved(self, keys):
        lengths = bin_lengths(keys, 512, "fibonacci")
        assert lengths.sum() == keys.size

    def test_accepts_callable(self, keys):
        fn = lambda k, m: np.zeros(len(k), dtype=np.int64)  # noqa: E731
        lengths = bin_lengths(keys, 8, fn)
        assert lengths[0] == keys.size
        assert lengths[1:].sum() == 0


class TestPerThreadStats:
    def test_entries_partition_the_keys(self, keys):
        st = per_thread_stats(keys, 1024, 32)
        assert st.num_threads == 32
        assert st.entries.sum() == keys.size

    def test_avg_bin_length_at_least_one(self, keys):
        st = per_thread_stats(keys, 1024, 8)
        nonzero = st.avg_bin_length[st.entries > 0]
        assert np.all(nonzero >= 1.0)

    def test_max_at_least_avg(self, keys):
        st = per_thread_stats(keys, 1024, 8)
        assert np.all(st.max_bin_length >= np.floor(st.avg_bin_length))

    def test_single_thread(self, keys):
        st = per_thread_stats(keys, 256, 1)
        assert st.entries[0] == keys.size


class TestLoadFactorSweep:
    def test_avg_bin_length_monotone_in_load_factor(self, keys):
        """Fig. 6d: lower load factor -> shorter average bins."""
        sweep = load_factor_sweep(keys, [2.0, 1.0, 0.5, 0.25, 0.125], 4)
        means = [sweep[lf].avg_bin_length.mean() for lf in [2.0, 1.0, 0.5, 0.25, 0.125]]
        assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))

    def test_smallest_load_factor_near_one(self, keys):
        sweep = load_factor_sweep(keys, [0.125], 4)
        assert sweep[0.125].avg_bin_length.mean() < 1.15

    def test_bad_load_factor_raises(self, keys):
        with pytest.raises(ValueError):
            load_factor_sweep(keys, [0.0], 4)


def test_table_stats_counts_live_entries(keys):
    t = EdgeHashTable(4096, max_load_factor=0.5)
    t.insert_accumulate(keys, np.ones(keys.size))
    st = table_stats(t, 16)
    assert st.entries.sum() == keys.size
