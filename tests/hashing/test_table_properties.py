"""Property-based tests: the hash table must behave like a dict of sums."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import HASH_FUNCTIONS, EdgeHashTable


@st.composite
def batches(draw, max_batches=6, max_batch=40):
    n_batches = draw(st.integers(1, max_batches))
    out = []
    for _ in range(n_batches):
        k = draw(st.integers(0, max_batch))
        keys = draw(st.lists(st.integers(0, 200), min_size=k, max_size=k))
        weights = draw(
            st.lists(
                st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
                min_size=k,
                max_size=k,
            )
        )
        out.append((np.array(keys, dtype=np.uint64), np.array(weights)))
    return out


@given(batches(), st.sampled_from(sorted(HASH_FUNCTIONS)))
@settings(max_examples=80, deadline=None)
def test_table_equals_dict_model(data, hash_name):
    table = EdgeHashTable(8, hash_function=hash_name, max_load_factor=0.5)
    model: dict[int, float] = {}
    for keys, weights in data:
        table.insert_accumulate(keys, weights)
        for k, w in zip(keys.tolist(), weights.tolist()):
            model[k] = model.get(k, 0.0) + w
    assert len(table) == len(model)
    if model:
        probe = np.array(sorted(model), dtype=np.uint64)
        expected = np.array([model[int(k)] for k in probe])
        assert np.allclose(table.lookup(probe), expected)
    # absent keys are absent
    absent = np.array([k for k in range(201, 211)], dtype=np.uint64)
    assert not table.contains(absent).any()


@given(batches())
@settings(max_examples=40, deadline=None)
def test_items_are_consistent_with_lookup(data):
    table = EdgeHashTable(16)
    for keys, weights in data:
        table.insert_accumulate(keys, weights)
    got_keys, got_weights = table.items()
    assert np.unique(got_keys).size == got_keys.size  # keys stored once
    assert np.allclose(table.lookup(got_keys), got_weights)


@given(st.integers(1, 63))
@settings(max_examples=30, deadline=None)
def test_pack_unpack_roundtrip_any_shift(shift):
    from repro.hashing import pack_key, unpack_key

    rng = np.random.default_rng(shift)
    hi_max = (1 << (64 - shift)) - 1
    lo_max = (1 << shift) - 1
    t1 = rng.integers(0, min(hi_max, 2**31) + 1, 64).astype(np.uint64)
    t2 = rng.integers(0, min(lo_max, 2**31) + 1, 64).astype(np.uint64)
    k = pack_key(t1, t2, shift=shift)
    a, b = unpack_key(k, shift=shift)
    assert np.array_equal(a, t1.astype(np.int64))
    assert np.array_equal(b, t2.astype(np.int64))
