"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import LFRParams, generate_lfr
from repro.graph import Graph


@pytest.fixture
def two_cliques() -> Graph:
    """Two 6-cliques joined by one bridge edge -- unambiguous communities."""
    edges = []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                edges.append((base + i, base + j))
    edges.append((0, 6))
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    return Graph.from_edges(src, dst)


@pytest.fixture
def weighted_loop_graph() -> Graph:
    """Small graph with weights and self-loops to stress conventions."""
    src = np.array([0, 1, 2, 0, 3, 2])
    dst = np.array([1, 2, 0, 0, 3, 3])
    w = np.array([1.0, 2.0, 3.0, 0.5, 1.5, 1.0])
    return Graph.from_edges(src, dst, w)


@pytest.fixture
def small_lfr():
    """A small LFR instance with clear planted structure."""
    return generate_lfr(
        LFRParams(
            num_vertices=600,
            avg_degree=12,
            max_degree=40,
            mixing=0.2,
            min_community=12,
            max_community=80,
        ),
        seed=42,
    )


def random_graph(n: int, p: float, seed: int, *, weighted: bool = False) -> Graph:
    """Erdős–Rényi helper shared by several test modules."""
    rng = np.random.default_rng(seed)
    src, dst = np.triu_indices(n, k=1)
    keep = rng.random(src.size) < p
    src, dst = src[keep], dst[keep]
    w = rng.uniform(0.5, 2.0, src.size) if weighted else None
    return Graph.from_edges(src, dst, w, num_vertices=n)
