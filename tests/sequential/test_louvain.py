"""Tests for the sequential Louvain baseline (Algorithm 1)."""

import networkx as nx
import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.graph import Graph
from repro.metrics import modularity, normalized_mutual_information
from repro.sequential import aggregate_graph, louvain, louvain_one_level
from tests.conftest import random_graph


class TestOneLevel:
    def test_two_cliques_found(self, two_cliques):
        labels, moved = louvain_one_level(two_cliques, rng=np.random.default_rng(0))
        assert np.unique(labels).size == 2
        assert np.unique(labels[:6]).size == 1
        assert np.unique(labels[6:]).size == 1
        assert moved[0] > 0.5  # most vertices move in the first sweep

    def test_labels_compact(self, two_cliques):
        labels, _ = louvain_one_level(two_cliques, rng=np.random.default_rng(1))
        assert labels.min() == 0
        assert np.array_equal(np.unique(labels), np.arange(labels.max() + 1))

    def test_moved_fraction_decays(self, small_lfr):
        _, moved = louvain_one_level(small_lfr.graph, rng=np.random.default_rng(0))
        assert len(moved) >= 3
        assert moved[0] > moved[-1]
        assert moved[-1] == 0.0  # terminates by quiescence

    def test_empty_graph(self):
        g = Graph.from_edges([], [])
        labels, moved = louvain_one_level(g)
        assert labels.size == 0 and moved == []

    def test_no_edges(self):
        g = Graph.from_edges([], [], num_vertices=5)
        labels, _ = louvain_one_level(g)
        assert np.array_equal(labels, np.arange(5))


class TestAggregate:
    def test_modularity_preserved(self, small_lfr):
        g = small_lfr.graph
        labels, _ = louvain_one_level(g, rng=np.random.default_rng(0))
        q_before = modularity(g, labels)
        agg = aggregate_graph(g, labels)
        q_after = modularity(agg, np.arange(agg.num_vertices))
        assert q_after == pytest.approx(q_before, abs=1e-12)

    def test_total_weight_preserved(self, small_lfr):
        g = small_lfr.graph
        labels, _ = louvain_one_level(g, rng=np.random.default_rng(0))
        agg = aggregate_graph(g, labels)
        assert agg.total_weight == pytest.approx(g.total_weight)

    def test_identity_aggregation(self, two_cliques):
        labels = np.arange(two_cliques.num_vertices)
        agg = aggregate_graph(two_cliques, labels)
        assert agg.num_vertices == two_cliques.num_vertices
        assert agg.total_weight == pytest.approx(two_cliques.total_weight)


class TestFullLouvain:
    def test_karate_club(self):
        g = Graph.from_networkx(nx.karate_club_graph())
        res = louvain(g, seed=0)
        # Published Louvain modularity on karate is ~0.41-0.42.
        assert res.final_modularity > 0.40
        assert 2 <= np.unique(res.membership).size <= 6

    def test_modularity_monotone_across_levels(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        assert all(a <= b + 1e-12 for a, b in zip(res.modularities, res.modularities[1:]))

    def test_membership_consistent_with_level_composition(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        composed = res.membership_at_level(res.num_levels - 1)
        assert np.array_equal(composed, res.membership)

    def test_membership_modularity_matches_reported(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        assert modularity(small_lfr.graph, res.membership) == pytest.approx(
            res.final_modularity, abs=1e-9
        )

    def test_recovers_planted_partition(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        nmi = normalized_mutual_information(res.membership, small_lfr.ground_truth)
        assert nmi > 0.8

    def test_deterministic_with_seed(self, small_lfr):
        a = louvain(small_lfr.graph, seed=3)
        b = louvain(small_lfr.graph, seed=3)
        assert np.array_equal(a.membership, b.membership)

    def test_no_shuffle_deterministic(self, small_lfr):
        a = louvain(small_lfr.graph, seed=None, shuffle=False)
        b = louvain(small_lfr.graph, seed=None, shuffle=False)
        assert np.array_equal(a.membership, b.membership)

    def test_level_traces_recorded(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        assert len(res.traces) == res.num_levels
        t0 = res.traces[0]
        assert t0.num_vertices == small_lfr.graph.num_vertices
        assert t0.inner_iterations == len(t0.moved_fraction)

    def test_max_levels_respected(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0, max_levels=1)
        assert res.num_levels == 1

    def test_level_index_out_of_range(self, small_lfr):
        res = louvain(small_lfr.graph, seed=0)
        with pytest.raises(IndexError):
            res.membership_at_level(res.num_levels)

    def test_empty_graph(self):
        res = louvain(Graph.from_edges([], []))
        assert res.membership.size == 0
        assert res.final_modularity == 0.0

    def test_disconnected_components_stay_separate(self):
        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], num_vertices=6)
        res = louvain(g, seed=0)
        m = res.membership
        assert m[0] == m[1] == m[2]
        assert m[3] == m[4] == m[5]
        assert m[0] != m[3]

    def test_weighted_graph_respects_weights(self):
        # strong weighted pairs beat unit-weight cross edges
        src = [0, 2, 0, 1, 0, 1]
        dst = [1, 3, 2, 3, 3, 2]
        w = [10.0, 10.0, 0.1, 0.1, 0.1, 0.1]
        g = Graph.from_edges(src, dst, w)
        res = louvain(g, seed=0)
        m = res.membership
        assert m[0] == m[1]
        assert m[2] == m[3]
        assert m[0] != m[2]

    def test_quality_against_networkx_louvain(self):
        g = random_graph(150, 0.06, seed=12)
        ours = louvain(g, seed=0).final_modularity
        theirs_comms = nx.algorithms.community.louvain_communities(
            g.to_networkx(), seed=0
        )
        theirs = nx.algorithms.community.modularity(g.to_networkx(), theirs_comms)
        assert ours >= theirs - 0.05
