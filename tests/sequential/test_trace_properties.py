"""Property-based tests of the sequential algorithm's migration traces.

Fig. 2's regression rests on these traces being well-formed; the properties
here must hold for any graph, not just the LFR sweep.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.metrics import modularity
from repro.sequential import louvain


@st.composite
def graphs(draw, max_vertices=25, max_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    k = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    return Graph.from_edges(
        np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64),
        num_vertices=n,
    )


@given(graphs(), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_traces_are_valid_fractions(graph, seed):
    res = louvain(graph, seed=seed)
    for trace in res.traces:
        for frac in trace.moved_fraction:
            assert 0.0 <= frac <= 1.0
        # the inner loop ends by quiescence or by the iteration cap
        # (edgeless graphs record an empty trace: no sweeps happen)
        if 0 < trace.inner_iterations < 100:
            assert trace.moved_fraction[-1] == 0.0


@given(graphs(), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_reported_modularity_matches_membership(graph, seed):
    res = louvain(graph, seed=seed)
    if res.modularities:
        assert abs(modularity(graph, res.membership) - res.final_modularity) < 1e-9


@given(graphs(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_result_at_least_as_good_as_singletons(graph, seed):
    res = louvain(graph, seed=seed)
    singles = modularity(graph, np.arange(graph.num_vertices))
    assert modularity(graph, res.membership) >= singles - 1e-9


@given(graphs(), st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_levels_shrink(graph, seed):
    res = louvain(graph, seed=seed)
    sizes = [t.num_vertices for t in res.traces]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
