"""Differential tests: the vector backend must match the hash reference.

The vectorized backend (:mod:`repro.parallel.vectorized`) re-expresses the
hash-table data-plane as flat-array kernels.  Its correctness claim is not
"close enough" but *trajectory equivalence*: identical membership, identical
modularity to the last bit, identical iteration/superstep structure, for any
input graph -- including the degenerate shapes hypothesis likes (self-loops,
multi-edges folded into weights, disconnected vertices, single vertices).

Three layers of evidence:

* property-based: random small graphs, every rank count, both backends,
  bitwise-equal results;
* fingerprint: the full observability fingerprint (per-level iteration
  counts, movers, epsilon, per-phase superstep records/bytes) is equal at
  zero tolerance;
* sanitizer: the runtime invariant sanitizer stays green under the vector
  backend on the same graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.observability import Tracer
from repro.observability.golden import Tolerances, compare_fingerprints, fingerprint_events
from repro.parallel import parallel_louvain

EXACT = Tolerances(
    movers_rel=0.0,
    candidates_rel=0.0,
    epsilon_abs=0.0,
    dq_rel=0.0,
    modularity_abs=0.0,
    records_rel=0.0,
)


@st.composite
def graphs(draw, max_vertices=24, max_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    k = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    w = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=9.0, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    return Graph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(w),
        num_vertices=n,
    )


def _run(graph, num_ranks, backend, **kwargs):
    return parallel_louvain(graph, num_ranks=num_ranks, backend=backend, **kwargs)


@given(graphs(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_membership_and_modularity_identical(graph, num_ranks):
    h = _run(graph, num_ranks, "hash")
    v = _run(graph, num_ranks, "vector")
    np.testing.assert_array_equal(h.membership, v.membership)
    assert h.final_modularity == v.final_modularity  # bitwise, not approx
    assert h.num_levels == v.num_levels
    assert h.modularities == v.modularities


@given(graphs(max_vertices=16, max_edges=40), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_fingerprints_identical_at_zero_tolerance(graph, num_ranks):
    traces = {}
    for backend in ("hash", "vector"):
        tracer = Tracer()
        _run(graph, num_ranks, backend, tracer=tracer)
        traces[backend] = fingerprint_events(tracer.events)
    drifts = compare_fingerprints(traces["hash"], traces["vector"], EXACT)
    assert not drifts, "\n".join(str(d) for d in drifts)


@given(graphs(max_vertices=16, max_edges=40), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_vector_backend_passes_sanitizer(graph, num_ranks):
    # InvariantViolation would raise; green means the vector data-plane
    # upholds the same runtime invariants the hash path is checked against.
    _run(graph, num_ranks, "vector", sanitize=True)


@given(graphs(), st.integers(1, 4), st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_equivalence_survives_message_reordering(graph, num_ranks, seed):
    # Reorder injection disables the static-inbox fast paths; the slow
    # (plain-exchange) vector paths must still match the hash reference
    # under the same permutations.
    h = _run(graph, num_ranks, "hash", reorder_seed=seed)
    v = _run(graph, num_ranks, "vector", reorder_seed=seed)
    np.testing.assert_array_equal(h.membership, v.membership)
    assert h.final_modularity == v.final_modularity


def test_modularity_independent_of_hash_function():
    # Pinned regression: with hash-slot-ordered table read-out, the last
    # ulp of Q depended on the hash family (fibonacci disagreed with the
    # other three on this graph).  Canonical (key-sorted) read-out makes
    # every family -- and the vector backend -- produce bitwise-equal runs.
    src = np.array([0, 0, 0], dtype=np.int64)
    dst = np.array([0, 1, 5], dtype=np.int64)
    w = np.array([118.048265355, 8.80350985, 2.0])
    g = Graph.from_edges(src, dst, w, num_vertices=21)
    results = {
        hf: parallel_louvain(g, num_ranks=1, backend="hash", hash_function=hf)
        for hf in ("fibonacci", "linear_congruential", "bitwise", "concatenated")
    }
    results["vector"] = parallel_louvain(g, num_ranks=1, backend="vector")
    baseline = results.pop("fibonacci")
    for name, res in results.items():
        np.testing.assert_array_equal(baseline.membership, res.membership)
        assert baseline.modularities == res.modularities, name


def test_differential_sweep_seeded_graphs():
    # ~50 seeded random graphs spanning the shapes the sweep brief calls
    # out: weighted multi-edges (from_edges folds duplicates), self-loops,
    # skewed weights, disconnected vertices.  Every graph must produce a
    # bitwise-identical run under both backends at several rank counts.
    rng = np.random.default_rng(2026)
    checked = 0
    for trial in range(50):
        n = int(rng.integers(2, 120))
        k = int(rng.integers(1, 4 * n))
        src = rng.integers(0, n, k)
        dst = rng.integers(0, n, k)
        if trial % 3 == 0:  # every third graph gets extra self-loops
            loops = rng.integers(0, n, max(1, n // 4))
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
        w = rng.random(src.size) * np.where(
            rng.random(src.size) < 0.15, 1e6, 1.0
        ) + 1e-3
        g = Graph.from_edges(src, dst, w, num_vertices=n)
        for ranks in (1, 2, 5):
            h = _run(g, ranks, "hash")
            v = _run(g, ranks, "vector")
            np.testing.assert_array_equal(h.membership, v.membership)
            assert h.modularities == v.modularities, f"trial={trial} ranks={ranks}"
            checked += 1
    assert checked == 150


def test_self_loop_heavy_graph_matches():
    # Self-loops feed the sigma_in bookkeeping and the RECONSTRUCTION
    # self-weight path; a regression here shifts modularity, not crashes.
    rng = np.random.default_rng(0)
    n = 40
    src = np.concatenate([rng.integers(0, n, 120), np.arange(n)])
    dst = np.concatenate([rng.integers(0, n, 120), np.arange(n)])
    w = rng.random(src.size) + 0.1
    g = Graph.from_edges(src, dst, w, num_vertices=n)
    for ranks in (1, 3, 4):
        h = _run(g, ranks, "hash")
        v = _run(g, ranks, "vector")
        np.testing.assert_array_equal(h.membership, v.membership)
        assert h.final_modularity == v.final_modularity
