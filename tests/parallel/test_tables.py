"""Tests for In_Table / Out_Table management."""

import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.parallel import ModuloPartition, RankTables, build_in_tables
from tests.conftest import random_graph


class TestRankTables:
    def test_in_edges_roundtrip(self):
        rt = RankTables()
        rt.add_in_edges(
            np.array([1, 2, 3]), np.array([0, 0, 4]), np.array([1.0, 2.0, 3.0])
        )
        v, u, w = rt.in_edges()
        order = np.lexsort((u, v))
        assert v[order].tolist() == [1, 2, 3]
        assert u[order].tolist() == [0, 0, 4]
        assert w[order].tolist() == [1.0, 2.0, 3.0]

    def test_out_accumulates_per_community(self):
        rt = RankTables()
        # three edges from u=5 into community 9 collapse to one bucket
        rt.accumulate_out(
            np.array([5, 5, 5, 6]),
            np.array([9, 9, 9, 9]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        u, c, w = rt.out_entries()
        order = np.argsort(u)
        assert u[order].tolist() == [5, 6]
        assert c[order].tolist() == [9, 9]
        assert w[order].tolist() == [6.0, 4.0]

    def test_read_out_is_canonically_ordered(self):
        # Regression: entries used to come back in hash-slot order, which
        # depends on the hash family and capacity -- downstream float folds
        # (strength, MODULARITY, RECONSTRUCTION) then differed in the last
        # ulp between hash functions.  Read-out must be (key-)sorted.
        rng = np.random.default_rng(5)
        v = rng.integers(0, 200, 500)
        u = rng.integers(0, 200, 500)
        w = rng.random(500)
        for hf in ("fibonacci", "linear_congruential", "bitwise", "concatenated"):
            rt = RankTables(hash_function=hf)
            rt.add_in_edges(v, u, w)
            rt.accumulate_out(v, u, w)
            iv, iu, _ = rt.in_edges()
            ov, ou, _ = rt.out_entries()
            ikeys = (iv << 32) | iu
            okeys = (ov << 32) | ou
            assert np.all(ikeys[1:] > ikeys[:-1]), hf
            assert np.all(okeys[1:] > okeys[:-1]), hf

    def test_reset_out_preserves_in(self):
        rt = RankTables()
        rt.add_in_edges(np.array([1]), np.array([0]), np.array([1.0]))
        rt.accumulate_out(np.array([0]), np.array([1]), np.array([1.0]))
        rt.reset_out_table()
        assert rt.out_entries()[0].size == 0
        assert rt.in_edges()[0].size == 1

    def test_reset_in(self):
        rt = RankTables()
        rt.add_in_edges(np.array([1]), np.array([0]), np.array([1.0]))
        rt.reset_in_table()
        assert rt.in_edges()[0].size == 0


class TestBuildInTables:
    @pytest.mark.parametrize("num_ranks", [1, 2, 5])
    def test_all_entries_covered(self, num_ranks):
        g = random_graph(40, 0.15, seed=0, weighted=True)
        partition = ModuloPartition(g.num_vertices, num_ranks)
        tables = build_in_tables(g, partition)
        total_entries = sum(t.in_edges()[0].size for t in tables)
        assert total_entries == g.num_adjacency_entries
        total_weight = sum(t.in_edges()[2].sum() for t in tables)
        assert total_weight == pytest.approx(g.strength.sum())

    def test_ownership_respected(self):
        g = random_graph(30, 0.2, seed=1)
        partition = ModuloPartition(g.num_vertices, 3)
        tables = build_in_tables(g, partition)
        for rank, t in enumerate(tables):
            _, u, _ = t.in_edges()
            if u.size:
                assert np.all(partition.owner(u) == rank)

    def test_strengths_recoverable(self):
        g = generate_lfr(num_vertices=200, avg_degree=8, max_degree=30, seed=2).graph
        partition = ModuloPartition(g.num_vertices, 4)
        tables = build_in_tables(g, partition)
        strength = np.zeros(g.num_vertices)
        for t in tables:
            _, u, w = t.in_edges()
            np.add.at(strength, u, w)
        assert np.allclose(strength, g.strength)

    def test_load_factor_respected(self):
        g = random_graph(50, 0.3, seed=3)
        partition = ModuloPartition(g.num_vertices, 2)
        tables = build_in_tables(g, partition, load_factor=0.125)
        for t in tables:
            if len(t.in_table):
                assert t.in_table.load_factor <= 0.125 + 1e-9
