"""Tests for the parallel Louvain algorithm (Algorithms 2-5)."""

import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.graph import Graph
from repro.metrics import modularity, normalized_mutual_information
from repro.parallel import (
    ExponentialSchedule,
    ParallelLouvainConfig,
    naive_parallel_louvain,
    parallel_louvain,
)
from repro.sequential import louvain as sequential_louvain
from tests.conftest import random_graph


@pytest.fixture(scope="module")
def lfr_graph():
    return generate_lfr(
        num_vertices=800, avg_degree=12, max_degree=40, mixing=0.25,
        min_community=12, max_community=100, seed=21,
    )


class TestCorrectness:
    def test_reported_q_matches_global_metric(self, lfr_graph):
        """The distributed Σ_in/Σ_tot bookkeeping must agree exactly with
        the direct modularity computation on the assembled labeling."""
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        assert modularity(lfr_graph.graph, res.membership) == pytest.approx(
            res.final_modularity, abs=1e-9
        )

    def test_per_level_q_matches_metric(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        for level in range(res.num_levels):
            labels = res.membership_at_level(level)
            assert modularity(lfr_graph.graph, labels) == pytest.approx(
                res.modularities[level], abs=1e-9
            )

    def test_two_cliques_exact(self, two_cliques):
        res = parallel_louvain(two_cliques, num_ranks=3)
        m = res.membership
        assert np.unique(m[:6]).size == 1
        assert np.unique(m[6:]).size == 1
        assert m[0] != m[6]

    def test_membership_composition(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        assert np.array_equal(
            res.membership_at_level(res.num_levels - 1), res.membership
        )

    def test_modularity_nondecreasing_over_levels(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        assert all(
            a <= b + 1e-9 for a, b in zip(res.modularities, res.modularities[1:])
        )

    def test_weighted_graph(self):
        src = [0, 2, 0, 1]
        dst = [1, 3, 2, 3]
        w = [10.0, 10.0, 0.1, 0.1]
        g = Graph.from_edges(src, dst, w)
        res = parallel_louvain(g, num_ranks=2)
        m = res.membership
        assert m[0] == m[1] and m[2] == m[3] and m[0] != m[2]

    def test_self_loops_handled(self):
        g = Graph.from_edges([0, 0, 1, 2], [0, 1, 2, 2], [5.0, 1.0, 1.0, 3.0])
        res = parallel_louvain(g, num_ranks=2)
        assert modularity(g, res.membership) == pytest.approx(
            res.final_modularity, abs=1e-9
        )


class TestQualityVsSequential:
    """Paper Fig. 4 / Table III claims."""

    def test_parallel_on_par_with_sequential(self, lfr_graph):
        seq = sequential_louvain(lfr_graph.graph, seed=0)
        par = parallel_louvain(lfr_graph.graph, num_ranks=8)
        assert par.final_modularity >= seq.final_modularity - 0.05

    def test_high_similarity_to_sequential(self, lfr_graph):
        seq = sequential_louvain(lfr_graph.graph, seed=0)
        par = parallel_louvain(lfr_graph.graph, num_ranks=8)
        nmi = normalized_mutual_information(seq.membership, par.membership)
        assert nmi > 0.75

    def test_recovers_planted_partition(self, lfr_graph):
        par = parallel_louvain(lfr_graph.graph, num_ranks=8)
        nmi = normalized_mutual_information(par.membership, lfr_graph.ground_truth)
        assert nmi > 0.8

    def test_heuristic_beats_naive(self, lfr_graph):
        """The central Fig. 4 claim: without the threshold the parallel
        algorithm stalls at much lower modularity."""
        par = parallel_louvain(lfr_graph.graph, num_ranks=8)
        naive = naive_parallel_louvain(
            lfr_graph.graph, num_ranks=8, max_inner=10, max_levels=4
        )
        assert par.final_modularity > naive.final_modularity + 0.05


class TestRankInvariance:
    @pytest.mark.parametrize("num_ranks", [1, 2, 3, 8, 16])
    def test_quality_stable_across_rank_counts(self, lfr_graph, num_ranks):
        res = parallel_louvain(lfr_graph.graph, num_ranks=num_ranks)
        assert res.final_modularity > 0.5

    def test_single_rank_works(self, two_cliques):
        res = parallel_louvain(two_cliques, num_ranks=1)
        assert np.unique(res.membership).size == 2

    def test_more_ranks_than_vertices(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0])
        res = parallel_louvain(g, num_ranks=8)
        assert res.membership.size == 3

    def test_deterministic_given_config(self, lfr_graph):
        a = parallel_louvain(lfr_graph.graph, num_ranks=4)
        b = parallel_louvain(lfr_graph.graph, num_ranks=4)
        assert np.array_equal(a.membership, b.membership)
        assert a.modularities == b.modularities


class TestMessageOrderInvariance:
    """Failure injection: the algorithm must be exactly invariant to the
    delivery order of records within a superstep (the paper's messaging
    layer gives no ordering guarantees)."""

    def test_reordered_delivery_identical_result(self, lfr_graph):
        base = parallel_louvain(lfr_graph.graph, num_ranks=4)
        shuffled = parallel_louvain(
            lfr_graph.graph, num_ranks=4, reorder_seed=12345
        )
        assert np.array_equal(base.membership, shuffled.membership)
        assert base.modularities == shuffled.modularities

    @pytest.mark.parametrize("seed", [1, 99])
    def test_multiple_reorder_seeds(self, two_cliques, seed):
        base = parallel_louvain(two_cliques, num_ranks=3)
        shuffled = parallel_louvain(two_cliques, num_ranks=3, reorder_seed=seed)
        assert np.array_equal(base.membership, shuffled.membership)


class TestEdgeCases:
    def test_empty_graph(self):
        res = parallel_louvain(Graph.from_edges([], []), num_ranks=2)
        assert res.membership.size == 0
        assert res.num_levels == 0

    def test_no_edges(self):
        g = Graph.from_edges([], [], num_vertices=5)
        res = parallel_louvain(g, num_ranks=2)
        assert res.membership.size == 5

    def test_single_edge(self):
        g = Graph.from_edges([0], [1])
        res = parallel_louvain(g, num_ranks=2)
        assert res.membership[0] == res.membership[1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelLouvainConfig(num_ranks=0)
        with pytest.raises(ValueError):
            ParallelLouvainConfig(max_inner=0)

    def test_config_and_kwargs_conflict(self, two_cliques):
        with pytest.raises(TypeError):
            parallel_louvain(two_cliques, ParallelLouvainConfig(), num_ranks=2)

    def test_max_levels_one(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4, max_levels=1)
        assert res.num_levels == 1


class TestDiagnostics:
    def test_iteration_stats_recorded(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        level0 = res.levels[0]
        assert level0.num_vertices == lfr_graph.graph.num_vertices
        its = level0.iterations
        assert len(its) >= 2
        assert its[0].epsilon >= its[-1].epsilon
        assert its[0].movers > 0
        assert all(it.phase_counters for it in its)

    def test_epsilon_follows_schedule(self, lfr_graph):
        sched = ExponentialSchedule(p1=0.05, p2=0.4)
        res = parallel_louvain(lfr_graph.graph, num_ranks=4, schedule=sched)
        for it in res.levels[0].iterations:
            assert it.epsilon == pytest.approx(sched.epsilon(it.iteration))

    def test_profiler_phases_present(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        tops = res.simulation.profiler.top_level_phases()
        assert "REFINE" in tops
        assert "GRAPH_RECONSTRUCTION" in tops
        assert "STATE_PROPAGATION" in tops

    def test_refine_dominates_counters(self, lfr_graph):
        """Fig. 8's qualitative claim at the counter level."""
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        prof = res.simulation.profiler
        refine_ops = prof.aggregate("REFINE").comp_ops.sum()
        recon_ops = prof.aggregate("GRAPH_RECONSTRUCTION").comp_ops.sum()
        assert refine_ops > recon_ops

    def test_level_counters_sum_to_total(self, lfr_graph):
        res = parallel_louvain(lfr_graph.graph, num_ranks=4)
        per_level = sum(
            c.comp_ops.sum()
            for lv in res.levels
            for c in lv.phase_counters.values()
        )
        total = res.simulation.profiler.total().comp_ops.sum()
        # All but the final (non-improving, unrecorded) refine pass.
        assert per_level <= total
        assert per_level > 0.4 * total
