"""Tests for the convergence heuristic (Eq. 7 + histogram thresholding)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ConstantSchedule,
    ExponentialSchedule,
    LinearDecaySchedule,
    fit_schedule,
    gain_histogram,
    threshold_from_histogram,
)
from repro.parallel.heuristic import HISTOGRAM_EDGES


class TestExponentialSchedule:
    def test_eq7_formula(self):
        s = ExponentialSchedule(p1=0.05, p2=0.3)
        for it in (1, 2, 5, 10):
            assert s.epsilon(it) == pytest.approx(
                min(1.0, 0.05 * math.exp(1.0 / (0.3 * it)))
            )

    def test_monotone_decay(self):
        s = ExponentialSchedule()
        eps = [s.epsilon(i) for i in range(1, 20)]
        assert all(a >= b for a, b in zip(eps, eps[1:]))

    def test_clamped_to_one(self):
        s = ExponentialSchedule(p1=0.9, p2=0.1)
        assert s.epsilon(1) == 1.0

    def test_limit_is_p1(self):
        s = ExponentialSchedule(p1=0.03, p2=0.5)
        assert s.epsilon(10_000) == pytest.approx(0.03, rel=1e-3)

    def test_iteration_floor(self):
        s = ExponentialSchedule()
        assert s.epsilon(0) == s.epsilon(1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExponentialSchedule(p1=0.0)
        with pytest.raises(ValueError):
            ExponentialSchedule(p2=-1.0)


class TestAblationSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.5)
        assert s.epsilon(1) == s.epsilon(100) == 0.5

    def test_linear_decay(self):
        s = LinearDecaySchedule(rate=0.3, floor=0.1)
        assert s.epsilon(1) == 1.0
        assert s.epsilon(2) == pytest.approx(0.7)
        assert s.epsilon(50) == pytest.approx(0.1)


class TestFitSchedule:
    def test_recovers_known_parameters(self):
        true = ExponentialSchedule(p1=0.04, p2=0.35)
        traces = [[true.epsilon(i) for i in range(1, 12)] for _ in range(3)]
        fitted = fit_schedule(traces)
        assert fitted.p1 == pytest.approx(0.04, rel=0.15)
        assert fitted.p2 == pytest.approx(0.35, rel=0.15)

    def test_noisy_fit_still_decays(self):
        rng = np.random.default_rng(0)
        true = ExponentialSchedule(p1=0.02, p2=0.3)
        traces = [
            [true.epsilon(i) * rng.uniform(0.7, 1.3) for i in range(1, 10)]
            for _ in range(10)
        ]
        fitted = fit_schedule(traces)
        assert fitted.epsilon(1) > fitted.epsilon(8)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fit_schedule([[0.5]])

    def test_zero_fractions_floored(self):
        fitted = fit_schedule([[0.9, 0.2, 0.0, 0.0]])
        assert fitted.p1 > 0

    def test_degenerate_flat_trace_falls_back_to_weak_schedule(self):
        """Regression: a non-decaying trace fits slope <= 0, which Eq. 7
        cannot represent.  The fit must fall back to p2 = 1000 (slope 1e-3)
        instead of raising in ExponentialSchedule.__post_init__."""
        fitted = fit_schedule([[0.3, 0.3, 0.3, 0.3, 0.3]])
        assert fitted.p2 == pytest.approx(1000.0)
        assert fitted.p1 > 0
        # The fallback schedule is essentially flat and stays near p1.
        assert fitted.epsilon(1) == pytest.approx(fitted.epsilon(50), rel=5e-3)

    def test_increasing_trace_also_falls_back(self):
        """A trace that *grows* over iterations (negative slope in the
        transformed space) takes the same fallback."""
        fitted = fit_schedule([[0.05, 0.1, 0.2, 0.4]])
        assert fitted.p2 == pytest.approx(1000.0)


class TestGainHistogram:
    def test_only_positive_counted(self):
        h = gain_histogram(np.array([-1.0, 0.0, 1e-5, 1e-3]))
        assert h.sum() == 2

    def test_empty(self):
        assert gain_histogram(np.array([])).sum() == 0

    def test_binning_matches_edges(self):
        g = np.array([1e-6])
        h = gain_histogram(g)
        b = int(np.flatnonzero(h)[0])
        if b > 0:
            assert HISTOGRAM_EDGES[b - 1] < 1e-6 <= HISTOGRAM_EDGES[b]

    def test_gain_exactly_on_edge_lands_in_lower_bin(self):
        """Boundary regression: bins are upper-edge inclusive.  A gain equal
        to ``edges[b]`` must land in bin b (interval ``(edges[b-1],
        edges[b]]``), not in bin b+1 -- otherwise an edge-valued gain would
        fail the strict ``gain > threshold`` test when the threshold opens
        exactly down to its bin."""
        for b in (1, 40, HISTOGRAM_EDGES.size - 1):
            h = gain_histogram(np.array([HISTOGRAM_EDGES[b]]))
            assert h[b] == 1 and h.sum() == 1

    def test_edge_valued_gain_admitted_by_its_bin_threshold(self):
        """Composition of the two halves: when the threshold opens a bin,
        a gain sitting exactly on that bin's upper edge must pass."""
        b = 50
        gains = np.array([HISTOGRAM_EDGES[b]])
        thr = threshold_from_histogram(gain_histogram(gains), 1)
        assert (gains > thr).sum() == 1

    def test_gain_above_last_edge_clipped_into_top_bin(self):
        h = gain_histogram(np.array([2.0]))
        assert h[-1] == 1


class TestThresholdSelection:
    def test_target_zero_blocks_everything(self):
        h = gain_histogram(np.array([1e-3, 1e-4]))
        assert threshold_from_histogram(h, 0) == float("inf")

    def test_target_above_total_opens_fully(self):
        h = gain_histogram(np.array([1e-3, 1e-4]))
        assert threshold_from_histogram(h, 5) == 0.0

    def test_selects_top_fraction(self):
        gains = np.concatenate([np.full(100, 1e-2), np.full(900, 1e-6)])
        h = gain_histogram(gains)
        thr = threshold_from_histogram(h, 100)
        assert (gains > thr).sum() == 100

    def test_threshold_is_bin_edge(self):
        gains = np.array([1e-2, 1e-4, 1e-6])
        h = gain_histogram(gains)
        thr = threshold_from_histogram(h, 1)
        assert thr in HISTOGRAM_EDGES or thr == 0.0

    def test_target_exactly_equal_to_suffix_count(self):
        """Boundary regression: when the target equals a bin's suffix count
        exactly, the walk stops at that bin (the LARGEST index whose suffix
        reaches the target) and admits exactly the target -- it must not
        overshoot into the next lower bin and admit more."""
        # 100 gains in a high bin, 900 in a low one; the suffix count at the
        # high bin is exactly 100.
        gains = np.concatenate([np.full(100, 1e-2), np.full(900, 1e-6)])
        h = gain_histogram(gains)
        thr = threshold_from_histogram(h, 100)
        assert (gains > thr).sum() == 100
        # One more than the suffix count must fall through to the lower bin.
        thr_plus = threshold_from_histogram(h, 101)
        assert thr_plus < thr
        assert (gains > thr_plus).sum() == 1000

    def test_threshold_monotone_in_target(self):
        """More requested movers can only lower (open) the threshold."""
        rng = np.random.default_rng(1)
        h = gain_histogram(rng.uniform(1e-8, 0.5, 500))
        thresholds = [threshold_from_histogram(h, t) for t in (1, 10, 100, 499)]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))

    @given(
        st.lists(st.floats(min_value=1e-10, max_value=0.9), min_size=1, max_size=200),
        st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_admitted_count_at_least_target(self, gains, target):
        """The histogram cutoff must never admit fewer than the target
        (it may admit more -- bin granularity -- but starving movers would
        stall convergence)."""
        g = np.array(gains)
        h = gain_histogram(g)
        thr = threshold_from_histogram(h, target)
        admitted = (g > thr).sum()
        assert admitted >= min(target, g.size) or thr == 0.0
