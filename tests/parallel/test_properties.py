"""Property-based tests of the parallel algorithms' core invariants.

Hypothesis generates small random weighted graphs (including degenerate
shapes: empty, disconnected, self-loops, multi-edges-as-weights) and checks
the invariants that must hold for *any* input:

* the distributed Σ_in / Σ_tot bookkeeping agrees exactly with the direct
  modularity computation;
* per-level modularity never decreases and hierarchy levels nest;
* results are invariant to message delivery order within a superstep;
* the Louvain partition is at least as modular as singletons.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.metrics import modularity
from repro.parallel import label_propagation, parallel_louvain


@st.composite
def graphs(draw, max_vertices=20, max_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    k = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    w = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    return Graph.from_edges(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(w),
        num_vertices=n,
    )


@given(graphs(), st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_reported_modularity_is_exact(graph, num_ranks):
    res = parallel_louvain(graph, num_ranks=num_ranks)
    if res.modularities:
        assert abs(modularity(graph, res.membership) - res.final_modularity) < 1e-9


@given(graphs(), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_levels_nest_and_q_nondecreasing(graph, num_ranks):
    res = parallel_louvain(graph, num_ranks=num_ranks)
    qs = res.modularities
    assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))
    for lvl in range(res.num_levels - 1):
        fine = res.membership_at_level(lvl)
        coarse = res.membership_at_level(lvl + 1)
        order = np.argsort(fine)
        f, c = fine[order], coarse[order]
        same = f[1:] == f[:-1]
        assert np.all(c[1:][same] == c[:-1][same])


@given(graphs(), st.integers(1, 4), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_delivery_order_invariance(graph, num_ranks, reorder_seed):
    base = parallel_louvain(graph, num_ranks=num_ranks)
    shuffled = parallel_louvain(graph, num_ranks=num_ranks, reorder_seed=reorder_seed)
    assert np.array_equal(base.membership, shuffled.membership)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_louvain_beats_singletons(graph):
    res = parallel_louvain(graph, num_ranks=2)
    singles = modularity(graph, np.arange(graph.num_vertices))
    assert modularity(graph, res.membership) >= singles - 1e-9


def test_simultaneous_overshoot_level_is_discarded():
    """Regression: on this 3-vertex graph with heavy self-loops, vertices 1
    and 2 each have an individually positive gain for joining community 0,
    but the *simultaneous* move lands everything in one community at Q=0 --
    below the singleton baseline -- and REFINE can never split it apart.
    The kernel must discard such a level rather than lock in the loss."""
    src = np.array([0, 0, 0, 1, 2])
    dst = np.array([0, 1, 2, 1, 2])
    w = np.array([10.0, 8.0, 4.0, 2.0, 1.0])
    graph = Graph.from_edges(src, dst, w)
    singles = modularity(graph, np.arange(graph.num_vertices))
    for num_ranks in (1, 2):
        res = parallel_louvain(graph, num_ranks=num_ranks)
        assert modularity(graph, res.membership) >= singles - 1e-9


def test_overshoot_discard_preserves_warm_start():
    """Companion regression: when the discarded level started from a warm
    start, the fallback must be the caller's partition, not the identity."""
    indptr = np.array([0, 4, 7, 12, 14, 15, 16, 17] + [17] * 9)
    indices = np.array([0, 1, 2, 3, 0, 2, 4, 0, 1, 3, 5, 6, 0, 2, 1, 2, 2])
    weights = np.array(
        [24.0, 4, 2, 1, 4, 2, 1, 2, 2, 4, 2, 1, 1, 4, 1, 2, 1]
    )
    strength = np.zeros(16)
    for u in range(16):
        strength[u] = weights[indptr[u]:indptr[u + 1]].sum()
    graph = Graph(indptr, indices, weights, strength, 29.0)
    first = parallel_louvain(graph, num_ranks=1)
    second = parallel_louvain(
        graph, num_ranks=1, initial_membership=first.membership
    )
    q1 = modularity(graph, first.membership)
    q2 = modularity(graph, second.membership)
    assert q2 >= q1 - 1e-9


@given(graphs(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_membership_is_valid_labeling(graph, num_ranks):
    res = parallel_louvain(graph, num_ranks=num_ranks)
    m = res.membership
    assert m.size == graph.num_vertices
    if m.size:
        assert m.min() >= 0


@given(graphs(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_lpa_membership_compact_and_connected_within(graph, num_ranks):
    res = label_propagation(graph, num_ranks=num_ranks, max_iterations=20)
    m = res.membership
    assert m.size == graph.num_vertices
    if m.size:
        # compact labels [0, k)
        assert np.array_equal(np.unique(m), np.arange(m.max() + 1))


@given(graphs(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_warm_start_from_own_result_is_stable(graph, num_ranks):
    """Restarting from a converged partition must not degrade it."""
    first = parallel_louvain(graph, num_ranks=num_ranks)
    second = parallel_louvain(
        graph, num_ranks=num_ranks, initial_membership=first.membership
    )
    q1 = modularity(graph, first.membership)
    q2 = modularity(graph, second.membership)
    assert q2 >= q1 - 1e-9
