"""Tests for distributed label propagation on the two-table infrastructure."""

import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.graph import Graph
from repro.metrics import modularity, normalized_mutual_information
from repro.parallel import (
    LabelPropagationConfig,
    label_propagation,
    parallel_louvain,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagationConfig(num_ranks=0)
        with pytest.raises(ValueError):
            LabelPropagationConfig(max_iterations=0)
        with pytest.raises(ValueError):
            LabelPropagationConfig(convergence_fraction=1.0)
        with pytest.raises(ValueError):
            LabelPropagationConfig(update_probability=0.0)

    def test_config_kwargs_conflict(self, two_cliques):
        with pytest.raises(TypeError):
            label_propagation(two_cliques, LabelPropagationConfig(), num_ranks=2)


class TestCorrectness:
    def test_two_cliques(self, two_cliques):
        res = label_propagation(two_cliques, num_ranks=3)
        m = res.membership
        assert np.unique(m[:6]).size == 1
        assert np.unique(m[6:]).size == 1
        assert m[0] != m[6]

    def test_converges(self, small_lfr):
        res = label_propagation(small_lfr.graph, num_ranks=4)
        assert res.iterations < 50
        assert res.changed_per_iteration[-1] <= max(1, small_lfr.graph.num_vertices // 1000)

    def test_recovers_planted_structure(self, small_lfr):
        res = label_propagation(small_lfr.graph, num_ranks=4)
        nmi = normalized_mutual_information(res.membership, small_lfr.ground_truth)
        assert nmi > 0.8

    def test_weighted_edges_dominate(self):
        g = Graph.from_edges([0, 2, 0, 1], [1, 3, 2, 3], [10.0, 10.0, 0.1, 0.1])
        res = label_propagation(g, num_ranks=2)
        m = res.membership
        assert m[0] == m[1] and m[2] == m[3] and m[0] != m[2]

    def test_labels_compact(self, small_lfr):
        res = label_propagation(small_lfr.graph, num_ranks=4)
        labels = res.membership
        assert labels.min() == 0
        assert np.array_equal(np.unique(labels), np.arange(labels.max() + 1))
        assert res.num_communities == labels.max() + 1

    def test_deterministic(self, small_lfr):
        a = label_propagation(small_lfr.graph, num_ranks=4, seed=7)
        b = label_propagation(small_lfr.graph, num_ranks=4, seed=7)
        assert np.array_equal(a.membership, b.membership)

    def test_self_loops_do_not_vote(self):
        # With a huge self-loop, vertex 1 must still adopt its neighborhood.
        g = Graph.from_edges([0, 1, 1, 0], [1, 2, 1, 2], [2.0, 2.0, 100.0, 2.0])
        res = label_propagation(g, num_ranks=2)
        assert np.unique(res.membership).size == 1


class TestEdgeCases:
    def test_empty_graph(self):
        res = label_propagation(Graph.from_edges([], []), num_ranks=2)
        assert res.membership.size == 0
        assert res.num_communities == 0

    def test_no_edges(self):
        g = Graph.from_edges([], [], num_vertices=4)
        res = label_propagation(g, num_ranks=2)
        assert np.unique(res.membership).size == 4  # all singletons

    def test_single_rank(self, two_cliques):
        res = label_propagation(two_cliques, num_ranks=1)
        assert np.unique(res.membership).size == 2

    def test_more_ranks_than_vertices(self):
        g = Graph.from_edges([0, 1], [1, 2])
        res = label_propagation(g, num_ranks=8)
        assert np.unique(res.membership).size == 1


class TestVsLouvain:
    """LPA as a related-work baseline (paper refs [10], [12], [45])."""

    def test_comparable_but_not_better_quality(self, small_lfr):
        lpa = label_propagation(small_lfr.graph, num_ranks=4)
        louv = parallel_louvain(small_lfr.graph, num_ranks=4)
        q_lpa = modularity(small_lfr.graph, lpa.membership)
        q_louv = louv.final_modularity
        assert q_lpa > 0.4  # finds real structure
        assert q_louv >= q_lpa - 0.05  # Louvain at least matches it

    def test_message_order_invariant_given_seed(self, small_lfr):
        base = label_propagation(small_lfr.graph, num_ranks=4, seed=3)
        shuf = label_propagation(
            small_lfr.graph, num_ranks=4, seed=3, reorder_seed=99
        )
        assert np.array_equal(base.membership, shuf.membership)

    def test_traffic_accounted(self, small_lfr):
        res = label_propagation(small_lfr.graph, num_ranks=4)
        prof = res.simulation.profiler
        assert prof.aggregate("LPA/PROPAGATE").records_sent.sum() > 0
        assert prof.aggregate("LPA/ADOPT").comp_ops.sum() > 0
