"""Tests for the dendrogram export."""

import numpy as np
import pytest

from repro.metrics import modularity
from repro.parallel import Dendrogram, build_dendrogram, parallel_louvain
from repro.sequential import louvain as sequential_louvain


@pytest.fixture(scope="module")
def graph_and_results():
    from repro.generators import generate_lfr

    lfr = generate_lfr(
        num_vertices=600, avg_degree=12, max_degree=40, mixing=0.2,
        min_community=12, max_community=80, seed=42,
    )
    return (
        lfr.graph,
        parallel_louvain(lfr.graph, num_ranks=4),
        sequential_louvain(lfr.graph, seed=0),
    )


class TestBuild:
    def test_depth_matches_levels(self, graph_and_results):
        g, par, seq = graph_and_results
        assert build_dendrogram(par).depth == par.num_levels
        assert build_dendrogram(seq).depth == seq.num_levels

    def test_final_matches_membership(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        assert np.array_equal(d.final.membership, par.membership)

    def test_nesting_consistent_both_algorithms(self, graph_and_results):
        _, par, seq = graph_and_results
        assert build_dendrogram(par).nesting_is_consistent()
        assert build_dendrogram(seq).nesting_is_consistent()

    def test_modularity_recorded_per_level(self, graph_and_results):
        g, par, _ = graph_and_results
        d = build_dendrogram(par)
        for lv in d.levels:
            assert modularity(g, lv.membership) == pytest.approx(
                lv.modularity, abs=1e-9
            )

    def test_community_counts_decrease(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        counts = [lv.num_communities for lv in d.levels]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_empty_dendrogram_final_raises(self):
        with pytest.raises(ValueError):
            Dendrogram().final


class TestQueries:
    def test_members_and_community_of_agree(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        c = d.community_of(0)
        members = d.members(c)
        assert 0 in members
        assert np.all(d.final.membership[members] == c)

    def test_lineage_length(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        assert len(d.lineage(5)) == d.depth

    def test_cut_negative_index(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        assert np.array_equal(d.cut(-1), d.final.membership)

    def test_sizes_sum_to_n(self, graph_and_results):
        g, par, _ = graph_and_results
        d = build_dendrogram(par)
        for lv in d.levels:
            assert lv.sizes().sum() == g.num_vertices


class TestSerialization:
    def test_json_roundtrip(self, graph_and_results):
        _, par, _ = graph_and_results
        d = build_dendrogram(par)
        restored = Dendrogram.from_json(d.to_json())
        assert restored.depth == d.depth
        for a, b in zip(restored.levels, d.levels):
            assert np.array_equal(a.membership, b.membership)
            assert a.modularity == pytest.approx(b.modularity)

    def test_nesting_violation_detected(self):
        from repro.parallel import HierarchyLevel

        fine = HierarchyLevel(0, np.array([0, 0, 1]), 2, 0.1)
        coarse = HierarchyLevel(1, np.array([0, 1, 1]), 2, 0.2)  # splits {0,1}!
        d = Dendrogram(levels=[fine, coarse])
        assert not d.nesting_is_consistent()
