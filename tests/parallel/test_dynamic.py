"""Tests for warm starts and incremental (dynamic-graph) community repair."""

import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.graph import Graph
from repro.metrics import modularity, normalized_mutual_information
from repro.parallel import (
    EdgeBatch,
    apply_edge_batch,
    incremental_louvain,
    parallel_louvain,
)


@pytest.fixture(scope="module")
def base():
    lfr = generate_lfr(
        num_vertices=800, avg_degree=12, max_degree=40, mixing=0.2,
        min_community=15, max_community=100, seed=8,
    )
    result = parallel_louvain(lfr.graph, num_ranks=4)
    return lfr, result


class TestWarmStart:
    def test_warm_start_converges_faster(self, base):
        lfr, cold = base
        warm = parallel_louvain(
            lfr.graph, num_ranks=4, initial_membership=cold.membership
        )
        cold_iters = len(cold.levels[0].iterations)
        warm_iters = len(warm.levels[0].iterations)
        assert warm_iters < cold_iters / 2

    def test_warm_start_preserves_quality(self, base):
        lfr, cold = base
        warm = parallel_louvain(
            lfr.graph, num_ranks=4, initial_membership=cold.membership
        )
        assert warm.final_modularity >= cold.final_modularity - 0.02

    def test_warm_start_q_consistent_with_metric(self, base):
        lfr, cold = base
        warm = parallel_louvain(
            lfr.graph, num_ranks=4, initial_membership=lfr.ground_truth
        )
        assert modularity(lfr.graph, warm.membership) == pytest.approx(
            warm.final_modularity, abs=1e-9
        )

    def test_arbitrary_labels_accepted(self, base):
        lfr, _ = base
        rng = np.random.default_rng(0)
        noisy = rng.integers(1000, 2000, lfr.graph.num_vertices)
        res = parallel_louvain(lfr.graph, num_ranks=4, initial_membership=noisy)
        assert res.membership.size == lfr.graph.num_vertices

    def test_bad_membership_rejected(self, base):
        lfr, _ = base
        with pytest.raises(ValueError):
            parallel_louvain(
                lfr.graph, num_ranks=4, initial_membership=np.zeros(3, dtype=np.int64)
            )
        with pytest.raises(ValueError):
            parallel_louvain(
                lfr.graph, num_ranks=4,
                initial_membership=np.full(lfr.graph.num_vertices, -1),
            )


class TestEdgeBatch:
    def test_defaults_and_validation(self):
        b = EdgeBatch(add_src=[0, 1], add_dst=[1, 2])
        assert b.num_additions == 2
        assert np.all(b.add_weight == 1.0)
        with pytest.raises(ValueError):
            EdgeBatch(add_src=[0], add_dst=[1, 2])
        with pytest.raises(ValueError):
            EdgeBatch(remove_src=[0], remove_dst=[])

    def test_apply_additions(self):
        g = Graph.from_edges([0], [1])
        g2 = apply_edge_batch(g, EdgeBatch(add_src=[1], add_dst=[2]))
        assert g2.num_vertices == 3
        assert g2.has_edge(1, 2)
        assert g.num_vertices == 2  # original untouched

    def test_addition_accumulates_weight(self):
        g = Graph.from_edges([0], [1], [2.0])
        g2 = apply_edge_batch(g, EdgeBatch(add_src=[0], add_dst=[1], add_weight=[3.0]))
        assert g2.edge_weight(0, 1) == 5.0

    def test_apply_removals(self):
        g = Graph.from_edges([0, 1], [1, 2])
        g2 = apply_edge_batch(g, EdgeBatch(remove_src=[0], remove_dst=[1]))
        assert not g2.has_edge(0, 1)
        assert g2.has_edge(1, 2)
        assert g2.num_vertices == 3

    def test_remove_reversed_direction(self):
        g = Graph.from_edges([0], [1])
        g2 = apply_edge_batch(g, EdgeBatch(remove_src=[1], remove_dst=[0]))
        assert g2.num_edges == 0

    def test_remove_missing_edge_noop(self):
        g = Graph.from_edges([0], [1])
        g2 = apply_edge_batch(g, EdgeBatch(remove_src=[0], remove_dst=[0]))
        assert g2.num_edges == 1

    def test_remove_unknown_vertex_rejected(self):
        g = Graph.from_edges([0], [1])
        with pytest.raises(ValueError):
            apply_edge_batch(g, EdgeBatch(remove_src=[5], remove_dst=[0]))

    def test_remove_then_add_same_edge_resurrects_it(self):
        """The documented ordering contract: removals apply before additions,
        so a batch that removes and re-adds edge (0, 1) ends with the edge
        present, carrying only the batch's added weight."""
        g = Graph.from_edges([0], [1], [7.0])
        g2 = apply_edge_batch(g, EdgeBatch(
            add_src=[0], add_dst=[1], add_weight=[2.0],
            remove_src=[0], remove_dst=[1],
        ))
        assert g2.has_edge(0, 1)
        assert g2.edge_weight(0, 1) == 2.0  # not 7.0, not 9.0

    def test_removal_of_vertex_added_by_same_batch_rejected(self):
        """Regression: removal ids are validated against the PRE-growth
        vertex count.  A removal naming a vertex that only exists because of
        this batch's additions cannot refer to a pre-existing edge, so it
        must raise instead of silently passing the (post-growth) bounds
        check."""
        g = Graph.from_edges([0], [1])
        with pytest.raises(ValueError, match="before this batch's additions"):
            apply_edge_batch(g, EdgeBatch(
                add_src=[1], add_dst=[5],
                remove_src=[5], remove_dst=[0],
            ))

    def test_add_weight_must_be_strictly_positive(self):
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError, match="strictly positive"):
                EdgeBatch(add_src=[0], add_dst=[1], add_weight=[bad])

    def test_negative_vertex_ids_rejected(self):
        with pytest.raises(ValueError, match="negative vertex ids"):
            EdgeBatch(add_src=[-1], add_dst=[0])
        with pytest.raises(ValueError, match="negative vertex ids"):
            EdgeBatch(remove_src=[0], remove_dst=[-2])


class TestIncremental:
    def test_small_perturbation_repaired_quickly(self, base):
        lfr, cold = base
        g = lfr.graph
        rng = np.random.default_rng(3)
        # Add 1% random edges and remove 1% existing ones.
        k = g.num_edges // 100
        add_src = rng.integers(0, g.num_vertices, k)
        add_dst = rng.integers(0, g.num_vertices, k)
        src, dst, _ = g.edge_arrays()
        drop = rng.choice(src.size, k, replace=False)
        batch = EdgeBatch(
            add_src=add_src, add_dst=add_dst,
            remove_src=src[drop], remove_dst=dst[drop],
        )
        new_graph, warm = incremental_louvain(
            g, batch, cold.membership, num_ranks=4
        )
        fresh = parallel_louvain(new_graph, num_ranks=4)
        # repaired solution is as good as recomputing from scratch...
        assert warm.final_modularity >= fresh.final_modularity - 0.03
        # ...with far fewer level-0 iterations.
        assert (
            len(warm.levels[0].iterations) < len(fresh.levels[0].iterations)
        )
        # and the communities barely move.
        nmi = normalized_mutual_information(warm.membership, cold.membership)
        assert nmi > 0.7

    def test_new_vertices_get_fresh_communities(self, base):
        lfr, cold = base
        g = lfr.graph
        n = g.num_vertices
        batch = EdgeBatch(add_src=[0, n], add_dst=[n, n + 1])
        new_graph, warm = incremental_louvain(g, batch, cold.membership, num_ranks=4)
        assert new_graph.num_vertices == n + 2
        assert warm.membership.size == n + 2

    def test_membership_size_validated(self, base):
        lfr, _ = base
        with pytest.raises(ValueError):
            incremental_louvain(
                lfr.graph, EdgeBatch(), np.zeros(5, dtype=np.int64), num_ranks=2
            )

    def test_grown_vertices_start_as_fresh_singletons(self, monkeypatch):
        """The warm-start labeling contract: old vertices keep their previous
        labels verbatim and each grown vertex gets its own fresh label above
        ``previous.max()`` -- never a recycled community id."""
        import repro.parallel.dynamic as dynamic

        captured = {}
        real = dynamic.parallel_louvain

        def spy(graph, config, initial_membership=None, **kw):
            captured["membership"] = np.array(initial_membership)
            return real(graph, config, initial_membership=initial_membership, **kw)

        monkeypatch.setattr(dynamic, "parallel_louvain", spy)
        g = Graph.from_edges([0, 1], [1, 2])
        prev = np.array([4, 4, 9], dtype=np.int64)
        batch = EdgeBatch(add_src=[2, 3], add_dst=[3, 4])
        dynamic.incremental_louvain(g, batch, prev, num_ranks=2)
        got = captured["membership"]
        np.testing.assert_array_equal(got[:3], prev)
        # Two grown vertices: consecutive fresh labels above prev.max().
        np.testing.assert_array_equal(got[3:], [10, 11])

    def test_no_growth_passes_membership_through(self, monkeypatch):
        import repro.parallel.dynamic as dynamic

        captured = {}
        real = dynamic.parallel_louvain

        def spy(graph, config, initial_membership=None, **kw):
            captured["membership"] = np.array(initial_membership)
            return real(graph, config, initial_membership=initial_membership, **kw)

        monkeypatch.setattr(dynamic, "parallel_louvain", spy)
        g = Graph.from_edges([0, 1], [1, 2])
        prev = np.array([0, 0, 1], dtype=np.int64)
        dynamic.incremental_louvain(
            g, EdgeBatch(add_src=[0], add_dst=[2]), prev, num_ranks=2
        )
        np.testing.assert_array_equal(captured["membership"], prev)
