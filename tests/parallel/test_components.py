"""Tests for distributed connected components (hash-min)."""

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.graph import Graph, connected_components, path_graph, ring_of_cliques
from repro.parallel.components import distributed_components
from tests.conftest import random_graph


class TestCorrectness:
    @pytest.mark.parametrize("num_ranks", [1, 3, 8])
    def test_matches_bfs_reference(self, num_ranks):
        g = random_graph(80, 0.03, seed=4)
        ours = distributed_components(g, num_ranks=num_ranks)
        ref = connected_components(g)
        # same partition into components (labels may differ)
        assert ours.num_components == np.unique(ref).size
        for c in range(ours.num_components):
            members = np.flatnonzero(ours.labels == c)
            assert np.unique(ref[members]).size == 1

    def test_single_component(self, two_cliques):
        res = distributed_components(two_cliques, num_ranks=4)
        assert res.num_components == 1

    def test_isolated_vertices(self):
        g = Graph.from_edges([0], [1], num_vertices=5)
        res = distributed_components(g, num_ranks=3)
        assert res.num_components == 4

    def test_empty_graph(self):
        res = distributed_components(Graph.from_edges([], []), num_ranks=2)
        assert res.labels.size == 0
        assert res.num_components == 0

    def test_ring_of_cliques_single(self):
        res = distributed_components(ring_of_cliques(5, 4), num_ranks=4)
        assert res.num_components == 1

    def test_labels_compact(self):
        g = Graph.from_edges([0, 3], [1, 4], num_vertices=6)
        res = distributed_components(g, num_ranks=2)
        assert np.array_equal(
            np.unique(res.labels), np.arange(res.num_components)
        )


class TestConvergence:
    def test_supersteps_bounded_by_diameter(self):
        g = path_graph(30)  # diameter 29, worst case for hash-min
        res = distributed_components(g, num_ranks=4)
        assert res.num_components == 1
        assert res.supersteps <= 31

    def test_last_superstep_quiescent(self, small_lfr):
        res = distributed_components(small_lfr.graph, num_ranks=4)
        assert res.changed_per_superstep[-1] == 0

    def test_rmat_has_isolated_vertices(self):
        # R-MAT famously leaves many degree-0 vertices.
        g = generate_rmat(scale=10, edge_factor=4, seed=1)
        res = distributed_components(g, num_ranks=4)
        assert res.num_components > 1

    def test_delivery_order_invariant(self, small_lfr):
        a = distributed_components(small_lfr.graph, num_ranks=4)
        b = distributed_components(small_lfr.graph, num_ranks=4, reorder_seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_traffic_accounted(self, small_lfr):
        res = distributed_components(small_lfr.graph, num_ranks=4)
        prof = res.simulation.profiler
        assert prof.aggregate("CC/PROPAGATE").records_sent.sum() > 0
