"""Tests for the high-level detect_communities API."""

import numpy as np
import pytest

from repro import P7IH, detect_communities
from repro.parallel import ConstantSchedule


class TestDetectCommunities:
    def test_parallel_default(self, small_lfr):
        s = detect_communities(small_lfr.graph, num_ranks=4)
        assert s.algorithm == "parallel"
        assert s.membership.size == small_lfr.graph.num_vertices
        assert s.modularity > 0.5
        assert s.num_communities == np.unique(s.membership).size
        assert len(s.level_modularities) == s.num_levels

    def test_sequential(self, small_lfr):
        s = detect_communities(small_lfr.graph, algorithm="sequential")
        assert s.algorithm == "sequential"
        assert s.modularity > 0.5

    def test_naive(self, small_lfr):
        s = detect_communities(
            small_lfr.graph, algorithm="naive", num_ranks=4, max_inner=8
        )
        assert s.algorithm == "naive"
        par = detect_communities(small_lfr.graph, num_ranks=4)
        assert s.modularity < par.modularity

    def test_machine_model_attached(self, small_lfr):
        s = detect_communities(small_lfr.graph, num_ranks=4, machine=P7IH)
        assert s.modeled_total_seconds is not None
        assert s.modeled_total_seconds > 0
        assert "REFINE" in s.modeled_phase_seconds

    def test_no_machine_no_times(self, small_lfr):
        s = detect_communities(small_lfr.graph, num_ranks=2)
        assert s.modeled_total_seconds is None
        assert s.modeled_phase_seconds == {}

    def test_custom_schedule(self, small_lfr):
        s = detect_communities(
            small_lfr.graph, num_ranks=4, schedule=ConstantSchedule(0.3)
        )
        assert s.modularity > 0.3

    def test_config_overrides_forwarded(self, small_lfr):
        s = detect_communities(small_lfr.graph, num_ranks=2, max_levels=1)
        assert s.num_levels == 1

    def test_community_sizes_property(self, small_lfr):
        s = detect_communities(small_lfr.graph, num_ranks=2)
        sizes = s.community_sizes
        assert sizes.sum() == small_lfr.graph.num_vertices
        assert sizes.size == s.num_communities

    def test_unknown_algorithm_raises(self, small_lfr):
        with pytest.raises(ValueError):
            detect_communities(small_lfr.graph, algorithm="quantum")

    def test_sequential_rejects_parallel_options(self, small_lfr):
        with pytest.raises(TypeError):
            detect_communities(
                small_lfr.graph, algorithm="sequential", max_inner=3
            )
