"""Tests for the 1D modulo partition."""

import numpy as np
import pytest

from repro.parallel import ModuloPartition


class TestModuloPartition:
    def test_owner_matches_modulo(self):
        p = ModuloPartition(100, 7)
        v = np.arange(100)
        assert np.array_equal(p.owner(v), v % 7)

    def test_owned_round_trip(self):
        p = ModuloPartition(53, 8)
        seen = []
        for r in range(8):
            owned = p.owned(r)
            assert np.array_equal(p.owner(owned), np.full(owned.size, r))
            assert np.array_equal(p.to_global(p.to_local(owned), r), owned)
            seen.append(owned)
        allv = np.sort(np.concatenate(seen))
        assert np.array_equal(allv, np.arange(53))

    def test_local_count(self):
        p = ModuloPartition(10, 4)
        counts = [p.local_count(r) for r in range(4)]
        assert counts == [3, 3, 2, 2]
        assert sum(counts) == 10

    def test_local_count_empty_rank(self):
        p = ModuloPartition(2, 4)
        assert p.local_count(3) == 0
        assert p.owned(3).size == 0

    def test_more_ranks_than_vertices(self):
        p = ModuloPartition(3, 10)
        total = sum(p.local_count(r) for r in range(10))
        assert total == 3

    def test_single_rank_owns_everything(self):
        p = ModuloPartition(17, 1)
        assert np.array_equal(p.owned(0), np.arange(17))
        assert np.all(p.owner(np.arange(17)) == 0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ModuloPartition(10, 0)
        with pytest.raises(ValueError):
            ModuloPartition(-1, 2)
