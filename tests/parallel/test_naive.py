"""Tests for the naive parallel baseline -- the paper's §III failure mode."""

import numpy as np
import pytest

from repro.generators import generate_lfr
from repro.metrics import modularity
from repro.parallel import (
    ParallelLouvainConfig,
    naive_parallel_louvain,
    parallel_louvain,
)


@pytest.fixture(scope="module")
def strong_graph():
    return generate_lfr(
        num_vertices=800, avg_degree=12, max_degree=40, mixing=0.15,
        min_community=15, max_community=100, seed=13,
    ).graph


class TestNaiveBehavior:
    def test_schedule_forced_to_none(self, strong_graph):
        res = naive_parallel_louvain(strong_graph, num_ranks=4, max_inner=5)
        assert res.config.schedule is None

    def test_config_object_also_overridden(self, strong_graph):
        cfg = ParallelLouvainConfig(num_ranks=4, max_inner=5)
        res = naive_parallel_louvain(strong_graph, cfg)
        assert res.config.schedule is None

    def test_every_iteration_moves_all_candidates(self, strong_graph):
        """Without the threshold, movers == candidates each iteration."""
        res = naive_parallel_louvain(strong_graph, num_ranks=4, max_inner=6)
        for it in res.levels[0].iterations:
            assert it.movers == it.candidates
            assert it.dq_threshold == 0.0
            assert it.epsilon == 1.0

    def test_chaotic_first_iterations(self, strong_graph):
        """The paper's 'chaotic motion': early naive iterations keep nearly
        every vertex moving, unlike the throttled version."""
        naive = naive_parallel_louvain(strong_graph, num_ranks=4, max_inner=6)
        throttled = parallel_louvain(strong_graph, num_ranks=4)
        n = strong_graph.num_vertices
        naive_m2 = naive.levels[0].iterations[1].movers
        throttled_m2 = throttled.levels[0].iterations[1].movers
        assert naive_m2 > 0.5 * n
        assert throttled_m2 < naive_m2

    def test_lower_final_modularity(self, strong_graph):
        naive = naive_parallel_louvain(
            strong_graph, num_ranks=4, max_inner=8, max_levels=4
        )
        throttled = parallel_louvain(strong_graph, num_ranks=4)
        assert naive.final_modularity < throttled.final_modularity

    def test_reported_q_still_exact(self, strong_graph):
        """Even while oscillating, the distributed bookkeeping stays exact."""
        naive = naive_parallel_louvain(strong_graph, num_ranks=4, max_inner=5)
        assert modularity(strong_graph, naive.membership) == pytest.approx(
            naive.final_modularity, abs=1e-9
        )

    def test_kwargs_and_config_conflict(self, strong_graph):
        with pytest.raises(TypeError):
            naive_parallel_louvain(
                strong_graph, ParallelLouvainConfig(), num_ranks=2
            )
