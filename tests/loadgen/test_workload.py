"""Scenario parsing, validation, and the arrival process."""

import pytest

from repro.loadgen import (
    LoadConfigError,
    OperationMix,
    load_scenario,
    open_loop_arrivals,
    parse_scenario,
)


def _minimal(**overrides):
    data = {
        "label": "t",
        "ops": {"health": {"weight": 1}},
    }
    data.update(overrides)
    return data


class TestParseScenario:
    def test_minimal_defaults(self):
        s = parse_scenario(_minimal())
        assert s.label == "t"
        assert s.mode == "open"
        assert s.poll == "long"
        assert [op.name for op in s.ops] == ["health"]

    def test_missing_label_rejected(self):
        with pytest.raises(LoadConfigError, match="label"):
            parse_scenario({"ops": {"health": {}}})

    def test_empty_ops_rejected(self):
        with pytest.raises(LoadConfigError, match="ops"):
            parse_scenario({"label": "t", "ops": {}})

    def test_unknown_op_rejected(self):
        with pytest.raises(LoadConfigError, match="unknown op"):
            parse_scenario(_minimal(ops={"frobnicate": {"weight": 1}}))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(LoadConfigError, match="weight"):
            parse_scenario(_minimal(ops={"health": {"weight": 0}}))

    def test_bad_mode_rejected(self):
        with pytest.raises(LoadConfigError, match="mode"):
            parse_scenario(_minimal(workload={"mode": "sideways"}))

    def test_bad_poll_rejected(self):
        with pytest.raises(LoadConfigError, match="poll"):
            parse_scenario(_minimal(workload={"poll": "frantic"}))

    def test_unknown_service_key_rejected(self):
        with pytest.raises(LoadConfigError, match="service"):
            parse_scenario(_minimal(service={"turbo": True}))

    def test_slo_target_must_be_known(self):
        with pytest.raises(LoadConfigError, match="SLO target"):
            parse_scenario(_minimal(slo={"membership": {"p99_ms": 10}}))

    def test_slo_total_and_poll_targets_allowed(self):
        s = parse_scenario(
            _minimal(slo={"total": {"max_5xx": 0}, "poll": {"p99_ms": 100}})
        )
        assert set(s.slos) == {"total", "poll"}

    def test_op_params_pass_through(self):
        s = parse_scenario(
            _minimal(ops={"submit_graph": {"weight": 2, "communities": 7}})
        )
        assert s.ops[0].params == {"communities": 7}
        assert s.ops[0].weight == 2.0

    def test_negative_rate_rejected(self):
        with pytest.raises(LoadConfigError, match="rate"):
            parse_scenario(_minimal(workload={"rate": -1}))

    def test_scaled_multiplies_only_offered_window(self):
        s = parse_scenario(
            _minimal(workload={"ramp_s": 2.0, "steady_s": 10.0, "drain_s": 5.0})
        )
        half = s.scaled(0.5)
        assert half.ramp_s == 1.0
        assert half.steady_s == 5.0
        assert half.drain_s == 5.0  # drain untouched
        assert s.steady_s == 10.0  # original untouched
        with pytest.raises(LoadConfigError):
            s.scaled(0)


class TestCheckedInScenarios:
    """The two shipped scenario files must always parse."""

    @pytest.mark.parametrize(
        "path",
        [
            "benchmarks/load/smoke_service.toml",
            "benchmarks/load/mixed_rw.toml",
        ],
    )
    def test_parses(self, path):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        s = load_scenario(str(repo_root / path))
        assert s.ops and s.slos
        assert "total" in s.slos


class TestOperationMix:
    def test_deterministic_for_fixed_seed(self):
        ops = parse_scenario(
            _minimal(ops={"health": {"weight": 1}, "membership": {"weight": 3}})
        ).ops
        seq_a = [OperationMix(ops, seed=7).choose().name for _ in range(1)]
        mix_a = OperationMix(ops, seed=7)
        mix_b = OperationMix(ops, seed=7)
        seq_a = [mix_a.choose().name for _ in range(50)]
        seq_b = [mix_b.choose().name for _ in range(50)]
        assert seq_a == seq_b

    def test_weights_bias_the_draw(self):
        ops = parse_scenario(
            _minimal(ops={"health": {"weight": 1}, "membership": {"weight": 9}})
        ).ops
        mix = OperationMix(ops, seed=0)
        names = [mix.choose().name for _ in range(500)]
        assert names.count("membership") > names.count("health") * 2

    def test_fork_streams_diverge_but_are_reproducible(self):
        ops = parse_scenario(
            _minimal(ops={"health": {"weight": 1}, "membership": {"weight": 1}})
        ).ops
        forks_a = [OperationMix(ops, seed=3).fork(i) for i in range(2)]
        forks_b = [OperationMix(ops, seed=3).fork(i) for i in range(2)]
        for a, b in zip(forks_a, forks_b):
            assert [a.choose().name for _ in range(30)] == [
                b.choose().name for _ in range(30)
            ]


class TestArrivals:
    def test_count_matches_rate_times_duration(self):
        arrivals = list(open_loop_arrivals(50.0, 0.0, 2.0))
        assert len(arrivals) == 100
        assert arrivals[0] == 0.0
        assert arrivals[-1] < 2.0

    def test_monotonic_and_ramp_spreads_arrivals(self):
        arrivals = list(open_loop_arrivals(20.0, 1.0, 1.0))
        assert arrivals == sorted(arrivals)
        ramp = [t for t in arrivals if t < 1.0]
        steady = [t for t in arrivals if t >= 1.0]
        # The ramp runs below the steady rate, so it has fewer arrivals.
        assert 0 < len(ramp) < len(steady)
