"""End-to-end loadgen runs against an in-process service (no subprocess).

The CLI path boots ``repro serve`` as a subprocess; tests target an
in-process :class:`ServiceServer` through ``url=`` instead, which exercises
the identical HTTP surface without paying a Python interpreter boot per
test.  The CI workflow's slo-gate covers the subprocess boot path.
"""

import pytest

from repro.loadgen import (
    ServiceClient,
    parse_scenario,
    run_scenario,
    write_load_summary,
    write_load_table,
)
from repro.service import DetectionService, ServiceServer


@pytest.fixture()
def server():
    svc = DetectionService(num_workers=2, queue_capacity=8, seed=0)
    srv = ServiceServer(svc, port=0)
    srv.serve_background()
    yield srv
    srv.stop()


def _scenario(ops=None, **workload):
    base_workload = {
        "mode": "closed",
        "clients": 3,
        "think_time_s": 0.01,
        "steady_s": 1.0,
        "drain_s": 5.0,
        "poll": "busy",
        "seed": 0,
        "metrics_interval_s": 0.1,
    }
    base_workload.update(workload)
    return parse_scenario({
        "label": "itest",
        "workload": base_workload,
        "ops": ops or {
            "submit_graph": {"weight": 1, "communities": 3,
                             "community_size": 8, "variants": 2},
            "membership": {"weight": 4},
            "health": {"weight": 2},
        },
        "slo": {
            "total": {"max_5xx": 0, "min_count": 10},
            "health": {"p99_ms": 5000.0},
        },
    })


class TestRunScenario:
    def test_closed_loop_end_to_end(self, server, tmp_path):
        result = run_scenario(_scenario(), url=server.address)

        total = result.op_summaries["total"]
        assert total["count"] >= 10
        assert total["server_err_5xx"] == 0
        # All three ops (plus poll follow-ups) actually ran.
        assert {"submit_graph", "membership", "health"} <= set(result.op_summaries)
        assert result.op_summaries["submit_graph"]["ok"] >= 1
        # Jobs were followed to terminal states.
        assert result.jobs["completed"] >= 1
        assert "poll" in result.op_summaries
        # The server-side histograms made it into the result.
        assert any("/healthz" in ep for ep in result.server_latency)
        # Queue-depth gauge sampling ran.
        assert "repro_service_queue_pending" in result.queue_depth
        assert result.passed, [c.describe() for c in result.checks]

        table = tmp_path / "load_table.csv"
        summary = tmp_path / "LOAD_itest.json"
        write_load_table(result, str(table))
        doc = write_load_summary(result, str(summary))
        assert table.exists() and summary.exists()
        text = table.read_text()
        assert text.splitlines()[0].startswith("op,count,")
        assert "total," in text
        assert doc["schema"] == 1
        assert doc["slo"]["passed"] is True
        assert "environment" in doc and "ops" in doc

    def test_open_loop_with_long_poll(self, server):
        # Submission-heavy mix: job follow-ups must happen regardless of how
        # the seeded weighted draw falls.
        scenario = _scenario(
            ops={
                "submit_graph": {"weight": 5, "communities": 3,
                                 "community_size": 8, "variants": 2},
                "membership": {"weight": 1},
                "health": {"weight": 1},
            },
            mode="open", rate=25.0, max_outstanding=8,
            steady_s=1.0, poll="long", poll_wait_s=3.0,
        )
        result = run_scenario(scenario, url=server.address)
        total = result.op_summaries["total"]
        assert total["count"] >= 15
        assert total["server_err_5xx"] == 0
        assert result.jobs["completed"] >= 1

    def test_impossible_slo_fails_the_result(self, server):
        scenario = _scenario()
        scenario.slos["total"]["p99_ms"] = 0.0001
        result = run_scenario(scenario, url=server.address)
        assert not result.passed
        failed = [c for c in result.checks if not c.ok]
        assert any(c.key == "p99_ms" for c in failed)

    def test_unreachable_server_is_all_net_errors_not_a_crash(self):
        scenario = _scenario(steady_s=0.3, poll="none")
        scenario.slos["total"]["max_error_rate"] = 0.0
        # Port 9 (discard) refuses connections immediately.
        result = run_scenario(scenario, url="http://127.0.0.1:9")
        total = result.op_summaries["total"]
        assert total["net_err"] == total["count"] > 0
        assert total["error_rate"] == 1.0
        assert not result.passed  # the error-rate SLO trips


class TestCli:
    def test_load_run_against_url_and_slo_override(self, server, tmp_path, capsys):
        """`repro load run --url ... --slo` must gate the exit code."""
        from repro.cli import main

        scenario_path = tmp_path / "s.json"
        import json

        scenario_path.write_text(json.dumps({
            "label": "cli",
            "workload": {"mode": "closed", "clients": 2, "think_time_s": 0.01,
                         "steady_s": 0.5, "drain_s": 3.0, "poll": "busy"},
            "ops": {"health": {"weight": 1}},
            "slo": {"total": {"max_5xx": 0}},
        }))
        out_dir = tmp_path / "out"

        rc = main(["load", "run", str(scenario_path), "--url", server.address,
                   "--out-dir", str(out_dir)])
        assert rc == 0
        assert (out_dir / "LOAD_cli.json").exists()
        assert (out_dir / "load_table.csv").exists()

        rc = main(["load", "run", str(scenario_path), "--url", server.address,
                   "--out-dir", str(out_dir), "--label", "cli_fail",
                   "--slo", "total.p99_ms=0.0001"])
        assert rc == 1  # the must-fail self-test contract
        assert (out_dir / "LOAD_cli_fail.json").exists()

        rc = main(["load", "report", str(out_dir / "LOAD_cli.json"),
                   "--check-slo"])
        assert rc == 0
        rc = main(["load", "report", str(out_dir / "LOAD_cli_fail.json"),
                   "--check-slo"])
        assert rc == 1

        rc = main(["load", "compare", str(out_dir / "LOAD_cli.json"),
                   str(out_dir / "LOAD_cli.json")])
        assert rc == 0
        capsys.readouterr()  # drain captured output

    def test_load_run_bad_scenario_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"label": "x", "ops": {"warp": {}}}')
        rc = main(["load", "run", str(bad)])
        assert rc == 2
        capsys.readouterr()


class TestServiceClient:
    def test_rejects_non_http_url(self):
        with pytest.raises(ValueError):
            ServiceClient("ftp://example")

    def test_metrics_text_and_health(self, server):
        client = ServiceClient(server.address)
        result = client.health()
        assert result.ok and result.payload["status"] == "ok"
        text = client.metrics_text()
        assert "repro_service_queue_pending" in text

    def test_follow_job_busy_and_long(self, server):
        client = ServiceClient(server.address)
        body = {"edges": [[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3]]}
        for mode in ("busy", "long"):
            submit = client.submit_graph(body)
            assert submit.status == 202
            state, polls = client.follow_job(
                submit.payload["job_id"], mode=mode, wait_s=5.0,
                interval_s=0.01,
            )
            assert state == "done"
            assert polls and polls[-1].payload["state"] == "done"
