"""Reservoir quantiles, status classification, Prometheus parsing."""

import random

import pytest

from repro.loadgen import (
    LoadRecorder,
    OpResult,
    OpStats,
    Reservoir,
    histogram_quantile,
    parse_prometheus_gauges,
    parse_prometheus_histograms,
)
from repro.observability import LatencyHistogram, prometheus_histograms


def _result(op="health", status=200, latency=0.01, **kwargs):
    return OpResult(op=op, status=status, latency_s=latency, **kwargs)


class TestReservoir:
    def test_exact_below_capacity(self):
        r = Reservoir(capacity=100, seed=0)
        for v in range(1, 101):
            r.add(float(v))
        assert r.quantile(0.0) == 1.0
        assert r.quantile(1.0) == 100.0
        assert abs(r.quantile(0.5) - 50.5) < 1.0

    def test_uniform_sampling_beyond_capacity(self):
        r = Reservoir(capacity=256, seed=1)
        for v in range(10_000):
            r.add(float(v))
        assert r.seen == 10_000
        # The sampled median of a uniform 0..9999 stream lands near 5000.
        assert 3500 < r.quantile(0.5) < 6500

    def test_deterministic_for_fixed_seed(self):
        values = [random.Random(9).random() for _ in range(5000)]
        quantiles = []
        for _ in range(2):
            r = Reservoir(capacity=128, seed=42)
            for v in values:
                r.add(v)
            quantiles.append((r.quantile(0.5), r.quantile(0.99)))
        assert quantiles[0] == quantiles[1]

    def test_empty_is_zero(self):
        assert Reservoir().quantile(0.99) == 0.0

    def test_invalid_quantile_rejected(self):
        r = Reservoir()
        r.add(1.0)
        with pytest.raises(ValueError):
            r.quantile(1.5)


class TestOpStats:
    def test_status_classification_is_disjoint(self):
        stats = OpStats("x")
        for status in (200, 202, 503, 404, 400, 500, 0):
            stats.record(_result(status=status))
        assert stats.count == 7
        assert stats.ok == 2
        assert stats.backpressure == 1
        assert stats.not_found == 1
        assert stats.client_err == 1
        assert stats.server_err == 1
        assert stats.net_err == 1
        assert stats.errors == 2  # 500 + network, not the 503 or 404

    def test_summary_rates_and_latency(self):
        stats = OpStats("x")
        for latency in (0.010, 0.020, 0.030, 0.040):
            stats.record(_result(latency=latency))
        s = stats.summary(duration_s=2.0)
        assert s["count"] == 4
        assert s["throughput_rps"] == 2.0
        assert s["error_rate"] == 0.0
        assert s["latency_ms"]["max"] == pytest.approx(40.0)
        assert 10.0 <= s["latency_ms"]["p50"] <= 40.0


class TestLoadRecorder:
    def test_totals_aggregate_across_ops(self):
        rec = LoadRecorder(seed=0)
        rec.record(_result(op="health", status=200))
        rec.record(_result(op="membership", status=503))
        rec.record(_result(op="membership", status=500))
        total = rec.totals()
        assert total.count == 3
        assert total.backpressure == 1
        assert total.server_err == 1
        assert set(rec.op_stats()) == {"health", "membership"}

    def test_shed_and_job_accounting(self):
        rec = LoadRecorder(seed=0)
        rec.record_shed()
        rec.record_shed()
        rec.record_job(0.5, resolved=True)
        rec.record_job(1.0, resolved=False)
        assert rec.shed == 2
        assert rec.jobs_completed == 1
        assert rec.jobs_unresolved == 1

    def test_concurrent_recording_loses_nothing(self):
        import threading

        rec = LoadRecorder(seed=0)
        n, threads = 500, 8

        def hammer():
            for _ in range(n):
                rec.record(_result(op="health"))

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert rec.totals().count == n * threads


class TestPrometheusParsing:
    def test_gauges(self):
        text = (
            "# HELP repro_service_queue_pending x\n"
            "# TYPE repro_service_queue_pending gauge\n"
            "repro_service_queue_pending 3\n"
            'some_labeled{metric="x"} 9\n'
            "repro_service_jobs_running 2.0\n"
        )
        gauges = parse_prometheus_gauges(text)
        assert gauges["repro_service_queue_pending"] == 3.0
        assert gauges["repro_service_jobs_running"] == 2.0
        assert "some_labeled" not in gauges

    def test_histogram_roundtrip_through_exporter(self):
        """The loadgen parser must read what the service exporter writes."""
        hist = LatencyHistogram()
        for v in (0.002, 0.004, 0.008, 0.040, 0.900):
            hist.observe(v)
        text = prometheus_histograms(
            {"GET /x": hist},
            name="service_request_duration_seconds",
            label="endpoint",
            help_text="t",
        )
        parsed = parse_prometheus_histograms(text)
        assert set(parsed) == {"GET /x"}
        entry = parsed["GET /x"]
        assert entry["count"] == 5
        assert entry["sum"] == pytest.approx(0.954)
        assert entry["buckets"][-1][1] == 5  # +Inf bucket sees everything
        counts = [c for _, c in entry["buckets"]]
        assert counts == sorted(counts)

    def test_histogram_quantile_interpolates(self):
        # 10 obs <= 0.1, 10 more <= 0.2 (cumulative 20), none beyond.
        buckets = [(0.1, 10), (0.2, 20), (float("inf"), 20)]
        assert histogram_quantile(buckets, 0.5) == pytest.approx(0.1)
        assert histogram_quantile(buckets, 0.75) == pytest.approx(0.15)
        assert histogram_quantile(buckets, 1.0) == pytest.approx(0.2)

    def test_histogram_quantile_empty(self):
        assert histogram_quantile([], 0.99) == 0.0
        assert histogram_quantile([(0.1, 0), (float("inf"), 0)], 0.5) == 0.0
