"""SLO evaluation semantics and CLI override parsing."""

import pytest

from repro.loadgen import (
    LoadConfigError,
    evaluate_slos,
    parse_slo_overrides,
)


def _summary(**overrides):
    base = {
        "count": 100,
        "ok": 100,
        "backpressure_503": 0,
        "not_found_404": 0,
        "client_err_4xx": 0,
        "server_err_5xx": 0,
        "net_err": 0,
        "throughput_rps": 50.0,
        "error_rate": 0.0,
        "rate_503": 0.0,
        "latency_ms": {"mean": 5.0, "p50": 4.0, "p95": 9.0, "p99": 12.0, "max": 30.0},
    }
    base.update(overrides)
    return base


class TestEvaluate:
    def test_latency_bounds(self):
        checks = evaluate_slos(
            {"total": _summary()},
            {"total": {"p99_ms": 20.0, "p50_ms": 3.0}},
        )
        by_key = {c.key: c for c in checks}
        assert by_key["p99_ms"].ok  # 12 <= 20
        assert not by_key["p50_ms"].ok  # 4 > 3
        assert by_key["p50_ms"].actual == 4.0

    def test_min_bounds_flip_direction(self):
        checks = evaluate_slos(
            {"total": _summary()},
            {"total": {"min_throughput": 60.0, "min_count": 50}},
        )
        by_key = {c.key: c for c in checks}
        assert not by_key["min_throughput"].ok  # 50 < 60
        assert by_key["min_count"].ok  # 100 >= 50

    def test_error_and_backpressure_rates(self):
        summary = _summary(error_rate=0.02, rate_503=0.5, server_err_5xx=2)
        checks = evaluate_slos(
            {"total": summary},
            {"total": {"max_error_rate": 0.01, "max_503_rate": 0.6, "max_5xx": 0}},
        )
        by_key = {c.key: c for c in checks}
        assert not by_key["max_error_rate"].ok
        assert by_key["max_503_rate"].ok
        assert not by_key["max_5xx"].ok

    def test_missing_target_fails_loudly_not_vacuously(self):
        checks = evaluate_slos({}, {"membership": {"p99_ms": 100.0}})
        assert len(checks) == 1
        assert not checks[0].ok

    def test_unknown_key_raises(self):
        with pytest.raises(LoadConfigError, match="unknown SLO key"):
            evaluate_slos({"total": _summary()}, {"total": {"p42_ms": 1.0}})

    def test_describe_mentions_verdict(self):
        checks = evaluate_slos({"total": _summary()}, {"total": {"p99_ms": 20.0}})
        assert "PASS" in checks[0].describe()
        checks = evaluate_slos({"total": _summary()}, {"total": {"p99_ms": 1.0}})
        assert "FAIL" in checks[0].describe()


class TestOverrides:
    def test_parse_good(self):
        out = parse_slo_overrides(
            ["total.p99_ms=500", "health.max_error_rate=0.01", "total.max_5xx=0"]
        )
        assert out == {
            "total": {"p99_ms": 500.0, "max_5xx": 0.0},
            "health": {"max_error_rate": 0.01},
        }

    @pytest.mark.parametrize(
        "bad",
        ["p99_ms=500", "total.p99_ms", "total.=5", ".p99_ms=5",
         "total.p99_ms=fast", "total.bogus_key=1"],
    )
    def test_parse_bad(self, bad):
        with pytest.raises(LoadConfigError):
            parse_slo_overrides([bad])
