"""Report rendering and the load-compare regression gate."""

from repro.loadgen import (
    compare_load_summaries,
    format_load_compare,
    format_load_report,
)


def _op(p99=10.0, rps=50.0, count=100):
    return {
        "count": count,
        "ok": count,
        "backpressure_503": 0,
        "not_found_404": 0,
        "client_err_4xx": 0,
        "server_err_5xx": 0,
        "net_err": 0,
        "throughput_rps": rps,
        "error_rate": 0.0,
        "rate_503": 0.0,
        "latency_ms": {"mean": 5.0, "p50": 4.0, "p95": 8.0, "p99": p99, "max": 30.0},
    }


def _doc(**op_overrides):
    ops = {"health": _op(), "total": _op(count=200)}
    ops.update(op_overrides)
    return {
        "label": "t",
        "description": "test doc",
        "scenario": {
            "mode": "open", "rate": 30.0, "max_outstanding": 8,
            "ramp_s": 0.5, "steady_s": 3.0, "poll": "long",
        },
        "environment": {"platform": "testbox", "git_sha": "abc1234"},
        "wall_s": 3.5,
        "shed": 0,
        "jobs": {"completed": 5, "unresolved": 0,
                 "turnaround_ms": {"p50": 10.0, "p95": 20.0, "p99": 30.0}},
        "ops": ops,
        "queue_depth": {
            "repro_service_queue_pending": {
                "n": 12, "median": 0.0, "mean": 0.1, "stdev": 0.0, "cv": 0.0,
                "min": 0.0, "max": 1.0, "mad": 0.0, "outliers": [],
            },
        },
        "server_latency": {
            "GET /healthz": {"count": 10, "mean_ms": 0.4, "p50_ms": 0.3,
                             "p95_ms": 0.8, "p99_ms": 0.9},
        },
        "slo": {
            "passed": True,
            "checks": [{"target": "total", "key": "p99_ms", "limit": 100.0,
                        "actual": 10.0, "ok": True}],
        },
    }


class TestReport:
    def test_contains_all_sections(self):
        text = format_load_report(_doc())
        assert "# Load report: t" in text
        assert "Client-observed per-op latency" in text
        assert "Server-side request durations" in text
        assert "GET /healthz" in text
        assert "## Jobs" in text
        assert "## Queue depth" in text
        assert "## SLOs" in text
        assert "all SLOs met" in text
        assert "abc1234" in text

    def test_violations_flagged(self):
        doc = _doc()
        doc["slo"] = {
            "passed": False,
            "checks": [{"target": "total", "key": "p99_ms", "limit": 1.0,
                        "actual": 10.0, "ok": False}],
        }
        text = format_load_report(doc)
        assert "SLO VIOLATIONS" in text
        assert "**FAIL**" in text

    def test_shed_arrivals_called_out(self):
        doc = _doc()
        doc["shed"] = 17
        assert "17 arrivals shed" in format_load_report(doc)


class TestCompare:
    def test_within_tolerance_passes(self):
        result = compare_load_summaries(_doc(), _doc())
        assert not result.failed
        assert result.deltas  # it actually compared something
        text = format_load_compare(result)
        assert "within tolerance" in text

    def test_p99_regression_fails(self):
        current = _doc(health=_op(p99=25.0))  # 2.5x with default tol 1.0
        result = compare_load_summaries(_doc(), current)
        assert result.failed
        bad = [d for d in result.deltas if not d.ok]
        assert bad and bad[0].metric == "p99_ms" and bad[0].op == "health"
        assert "REGRESSION" in format_load_compare(result)

    def test_throughput_drop_fails(self):
        current = _doc(health=_op(rps=20.0))  # -60% with default tol 0.3
        result = compare_load_summaries(_doc(), current)
        assert any(
            not d.ok and d.metric == "throughput_rps" for d in result.deltas
        )

    def test_missing_op_fails(self):
        current = _doc()
        del current["ops"]["health"]
        result = compare_load_summaries(_doc(), current)
        assert result.failed
        assert result.missing_ops == ["health"]
        assert "missing" in format_load_compare(result)

    def test_custom_tolerance(self):
        current = _doc(health=_op(p99=25.0))
        loose = compare_load_summaries(_doc(), current, p99_tolerance=2.0)
        assert not loose.failed
        tight = compare_load_summaries(_doc(), current, p99_tolerance=0.1)
        assert tight.failed
