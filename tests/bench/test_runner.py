"""Tests for matrix execution, the run-table CSV schema and the BENCH json."""

import csv

import pytest

from repro.bench import (
    BenchConfigError,
    RUN_TABLE_COLUMNS,
    build_summary,
    parse_config,
    run_matrix,
    write_run_table,
    write_summary,
)

GRAPH = {
    "family": "lfr",
    "seed": 7,
    "num_vertices": 120,
    "avg_degree": 8,
    "max_degree": 20,
    "mixing": 0.2,
    "min_community": 10,
    "max_community": 40,
}


def tiny_config(**overrides):
    data = {
        "label": "tiny",
        "repetitions": 2,
        "warmup": 1,
        "factors": {"variant": ["parallel", "lpa"]},
        "cell": {
            "variant": "{variant}",
            "graph": "g",
            "ranks": 2,
            "seed": 0,
            "machine": "p7ih",
            "work_scale": 2.0,
        },
        "graphs": {"g": dict(GRAPH)},
    }
    data.update(overrides)
    return parse_config(data)


@pytest.fixture(scope="module")
def tiny_result():
    return run_matrix(tiny_config())


class TestRunMatrix:
    def test_repetition_counts(self, tiny_result):
        for cell_result in tiny_result.cells:
            assert len(cell_result.timed) == 2
            warmups = [r for r in cell_result.reps if r.kind == "warmup"]
            assert len(warmups) == 1
            assert not cell_result.timed_out

    def test_peak_memory_sampled_on_warmup_only(self, tiny_result):
        for cell_result in tiny_result.cells:
            warmup = [r for r in cell_result.reps if r.kind == "warmup"]
            assert warmup[-1].peak_mem_bytes is not None
            assert all(r.peak_mem_bytes is None for r in cell_result.timed)

    def test_parallel_cell_has_model_metrics(self, tiny_result):
        [par] = [
            c for c in tiny_result.cells if c.cell.params["variant"] == "parallel"
        ]
        for rep in par.timed:
            assert rep.modeled_s is not None and rep.modeled_s > 0
            assert rep.seq_reference_s is not None
            assert rep.gteps is not None and rep.gteps > 0
            assert rep.modularity is not None

    def test_lpa_cell_has_phases_and_iterations(self, tiny_result):
        [lpa] = [
            c for c in tiny_result.cells if c.cell.params["variant"] == "lpa"
        ]
        for rep in lpa.timed:
            assert rep.num_iterations >= 1
            assert rep.num_levels == 1
            assert any("PROPAGATE" in k for k in rep.phases)

    def test_membership_kept_only_on_request(self, tiny_result):
        assert all(
            r.membership is None
            for c in tiny_result.cells
            for r in c.reps
        )
        kept = run_matrix(
            tiny_config(
                repetitions=1, warmup=0, factors={"variant": ["parallel"]}
            ),
            keep_membership=True,
        )
        [cell] = kept.cells
        assert cell.timed[0].membership is not None
        assert len(cell.timed[0].membership) == GRAPH["num_vertices"]


class TestRunnerErrors:
    def test_work_scale_and_work_edges_conflict(self):
        config = tiny_config(factors={"variant": ["parallel"]})
        config.cell["work_edges"] = 1000
        with pytest.raises(BenchConfigError, match="not both"):
            run_matrix(config)

    def test_sequential_rejects_extras(self):
        config = tiny_config(factors={"variant": ["sequential"]})
        config.cell["max_levels"] = 2
        with pytest.raises(BenchConfigError, match="no extra options"):
            run_matrix(config)

    def test_unknown_variant(self):
        config = tiny_config(factors={"variant": ["simulated-annealing"]})
        with pytest.raises(BenchConfigError, match="unknown variant"):
            run_matrix(config)

    def test_unknown_machine(self):
        config = tiny_config(factors={"variant": ["parallel"]})
        config.cell["machine"] = "cray"
        with pytest.raises(BenchConfigError, match="unknown machine"):
            run_matrix(config)

    def test_cell_without_graph(self):
        config = tiny_config(factors={"variant": ["parallel"]})
        del config.cell["graph"]
        with pytest.raises(BenchConfigError, match="names no graph"):
            run_matrix(config)

    def test_work_edges_alone_scales_work(self):
        config = tiny_config(
            repetitions=1, warmup=0, factors={"variant": ["parallel"]}
        )
        del config.cell["work_scale"]
        config.cell["work_edges"] = 10_000_000
        result = run_matrix(config)
        rep = result.cells[0].timed[0]
        # 1e7 target edges on a ~500-edge proxy: modeled time must reflect
        # the scaled workload, far above the unscaled microseconds regime.
        assert rep.gteps is not None
        assert rep.modeled_s > 0.01


class TestRunTableCsv:
    def test_schema_and_rows(self, tiny_result, tmp_path):
        path = tmp_path / "run_table.csv"
        write_run_table(tiny_result, str(path))
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        header, body = rows[0], rows[1:]
        assert header == ["label", "cell", "rep", "kind", "factor:variant",
                          *RUN_TABLE_COLUMNS]
        # 2 cells x (1 warmup + 2 timed) repetitions.
        assert len(body) == 6
        by_col = dict(zip(header, zip(*body)))
        assert set(by_col["label"]) == {"tiny"}
        assert sorted(set(by_col["factor:variant"])) == ["lpa", "parallel"]
        assert set(by_col["kind"]) == {"warmup", "timed"}
        assert all(float(w) > 0 for w in by_col["wall_s"])

    def test_outlier_column_only_flags_timed_reps(self, tiny_result, tmp_path):
        path = tmp_path / "run_table.csv"
        write_run_table(tiny_result, str(path))
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                assert row["outlier"] in ("0", "1")
                if row["kind"] == "warmup":
                    assert row["outlier"] == "0"


class TestBenchSummary:
    def test_structure(self, tiny_result):
        summary = build_summary(tiny_result)
        assert summary["schema"] == 1
        assert summary["label"] == "tiny"
        assert summary["config"]["repetitions"] == 2
        assert {"python", "numpy", "platform"} <= set(summary["environment"])
        assert set(summary["cells"]) == {"variant=parallel", "variant=lpa"}

    def test_parallel_cell_metrics(self, tiny_result):
        summary = build_summary(tiny_result)
        cell = summary["cells"]["variant=parallel"]
        for metric in ("wall_s", "modularity", "modeled_s",
                       "seq_reference_s", "gteps", "peak_mem_bytes"):
            stats = cell["metrics"][metric]
            assert stats["n"] >= 1
            assert stats["min"] <= stats["median"] <= stats["max"]
        assert cell["scalars"]["num_levels"] >= 1
        assert cell["repetitions"] == 2
        assert cell["timed_out"] is False

    def test_lpa_cell_omits_model_metrics(self, tiny_result):
        cell = build_summary(tiny_result)["cells"]["variant=lpa"]
        assert "modeled_s" not in cell["metrics"]
        assert "wall_s" in cell["metrics"]
        assert cell["phases"]

    def test_write_summary_json(self, tiny_result, tmp_path):
        import json

        path = tmp_path / "BENCH_tiny.json"
        doc = write_summary(tiny_result, str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))
