"""Tests for the BENCH summary diff and the `repro bench compare` gate."""

import json

import pytest

from repro.bench import (
    DEFAULT_TOLERANCES,
    Tolerance,
    compare_summaries,
    format_compare_table,
)
from repro.cli import main


def summary(cells):
    """Minimal BENCH document: {cell_id: {metric: median}}."""
    return {
        "schema": 1,
        "label": "t",
        "cells": {
            cell_id: {
                "factors": {},
                "metrics": {
                    metric: {"median": value, "mean": value, "stdev": 0.0,
                             "cv": 0.0, "min": value, "max": value,
                             "mad": 0.0, "n": 3, "outliers": []}
                    for metric, value in metrics.items()
                },
            }
            for cell_id, metrics in cells.items()
        },
    }


class TestTolerance:
    def test_defaults(self):
        assert DEFAULT_TOLERANCES.wall_s == 0.25
        assert DEFAULT_TOLERANCES.modeled_s == 0.05
        assert DEFAULT_TOLERANCES.peak_mem_bytes == 0.50

    def test_for_metric(self):
        tol = Tolerance(wall_s=0.1)
        assert tol.for_metric("wall_s") == 0.1
        assert tol.for_metric("no_such_metric") is None


class TestCompareSummaries:
    def test_clean_comparison_passes(self):
        base = summary({"c": {"wall_s": 1.0, "modeled_s": 2.0}})
        result = compare_summaries(base, base)
        assert not result.failed
        assert result.checked == 2
        assert not result.regressions and not result.missing

    def test_regression_beyond_tolerance_fails(self):
        base = summary({"c": {"wall_s": 1.0}})
        cur = summary({"c": {"wall_s": 1.30}})  # +30% > 25% tolerance
        result = compare_summaries(base, cur)
        assert result.failed
        [delta] = result.regressions
        assert delta.metric == "wall_s"
        assert delta.ratio == pytest.approx(1.30)

    def test_within_tolerance_is_ok(self):
        base = summary({"c": {"wall_s": 1.0}})
        cur = summary({"c": {"wall_s": 1.20}})  # +20% < 25%
        result = compare_summaries(base, cur)
        assert not result.failed and len(result.ok) == 1

    def test_improvement_reported_not_failed(self):
        base = summary({"c": {"wall_s": 1.0}})
        cur = summary({"c": {"wall_s": 0.5}})
        result = compare_summaries(base, cur)
        assert not result.failed
        assert [d.status for d in result.improvements] == ["improvement"]

    def test_modeled_gate_is_tight(self):
        base = summary({"c": {"modeled_s": 1.0}})
        cur = summary({"c": {"modeled_s": 1.10}})  # +10% > 5% modeled tol
        assert compare_summaries(base, cur).failed

    def test_missing_cell_fails(self):
        base = summary({"a": {"wall_s": 1.0}, "b": {"wall_s": 1.0}})
        cur = summary({"a": {"wall_s": 1.0}})
        result = compare_summaries(base, cur)
        assert result.failed
        assert [d.cell_id for d in result.missing] == ["b"]

    def test_missing_metric_fails(self):
        base = summary({"c": {"wall_s": 1.0, "modeled_s": 2.0}})
        cur = summary({"c": {"wall_s": 1.0}})
        result = compare_summaries(base, cur)
        assert result.failed
        assert [d.metric for d in result.missing] == ["modeled_s"]

    def test_new_cells_informational(self):
        base = summary({"a": {"wall_s": 1.0}})
        cur = summary({"a": {"wall_s": 1.0}, "z": {"wall_s": 9.0}})
        result = compare_summaries(base, cur)
        assert not result.failed
        assert result.new_cells == ["z"]

    def test_ungated_metrics_ignored(self):
        base = summary({"c": {"modularity": 0.8}})
        cur = summary({"c": {"modularity": 0.1}})
        result = compare_summaries(base, cur)
        assert not result.failed and result.checked == 0

    def test_custom_tolerance(self):
        base = summary({"c": {"wall_s": 1.0}})
        cur = summary({"c": {"wall_s": 2.0}})
        assert not compare_summaries(base, cur, Tolerance(wall_s=2.0)).failed


class TestFormatTable:
    def test_failure_report_names_the_cell(self):
        base = summary({"c": {"wall_s": 1.0}, "gone": {"wall_s": 1.0}})
        cur = summary({"c": {"wall_s": 2.0}})
        text = format_compare_table(compare_summaries(base, cur))
        assert "REGRESSION" in text and "c [wall_s]" in text
        assert "MISSING" in text and "gone" in text
        assert "FAIL: 1 regression(s), 1 missing" in text

    def test_clean_report_says_ok(self):
        base = summary({"c": {"wall_s": 1.0}})
        text = format_compare_table(compare_summaries(base, base))
        assert "ok: 1 comparison(s) within tolerance" in text


class TestCompareCli:
    """Exit-code contract of `repro bench compare` (the CI gate)."""

    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", summary({"c": {"wall_s": 1.0}}))
        assert main(["bench", "compare", base, base]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", summary({"c": {"wall_s": 1.0}}))
        cur = self.write(tmp_path, "cur.json", summary({"c": {"wall_s": 1.3}}))
        assert main(["bench", "compare", base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_widens_gate(self, tmp_path):
        base = self.write(tmp_path, "base.json", summary({"c": {"wall_s": 1.0}}))
        cur = self.write(tmp_path, "cur.json", summary({"c": {"wall_s": 1.3}}))
        assert main(["bench", "compare", base, cur, "--tolerance", "0.5"]) == 0

    def test_unreadable_summary_exits_two(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", summary({}))
        assert main(["bench", "compare", base, str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
