"""Tests for the robust repetition statistics (repro.bench.stats)."""

import math

import pytest

from repro.bench import MAD_THRESHOLD, SampleStats, mad, mad_outliers, summarize


class TestMad:
    def test_known_value(self):
        # median 3, |x - 3| = [2, 1, 0, 1, 2] -> MAD 1
        assert mad([1, 2, 3, 4, 5]) == 1.0

    def test_constant_sample_is_zero(self):
        assert mad([7.0, 7.0, 7.0]) == 0.0


class TestOutliers:
    def test_gross_outlier_flagged(self):
        values = [1.0, 1.01, 0.99, 1.02, 5.0]
        assert mad_outliers(values) == [4]

    def test_clean_sample_unflagged(self):
        assert mad_outliers([1.0, 1.05, 0.95, 1.02]) == []

    def test_small_samples_never_flag(self):
        # n < 3 cannot distinguish an outlier from spread.
        assert mad_outliers([1.0, 100.0]) == []

    def test_zero_mad_never_flags(self):
        # Constant repetitions with one change would divide by zero.
        values = [1.0, 1.0, 1.0, 1.0, 2.0]
        assert mad(values) == 0.0
        assert mad_outliers(values) == []

    def test_threshold_is_modified_zscore(self):
        # Iglewicz & Hoaglin: flag when 0.6745*|x-med|/MAD > 3.5.
        values = [10.0, 10.0 + 1.0, 10.0 - 1.0, 10.0 + 5.18, 10.0]
        # modified z of the 4th value: 0.6745*5.18/1.0 = 3.49 -> unflagged
        assert mad_outliers(values) == []
        values[3] = 10.0 + 5.2  # 3.507 -> flagged
        assert mad_outliers(values) == [3]
        assert MAD_THRESHOLD == 3.5


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([2.0, 4.0, 6.0])
        assert s.n == 3
        assert s.median == 4.0
        assert s.mean == 4.0
        assert s.min == 2.0 and s.max == 6.0
        assert s.stdev == pytest.approx(2.0)
        assert s.cv == pytest.approx(0.5)

    def test_single_value(self):
        s = summarize([3.0])
        assert s.n == 1 and s.stdev == 0.0 and s.cv == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_non_finite_raises(self):
        with pytest.raises(ValueError):
            summarize([1.0, math.nan])

    def test_roundtrip(self):
        s = summarize([1.0, 2.0, 30.0, 2.5])
        again = SampleStats.from_dict(s.to_dict())
        assert again == s

    def test_outliers_recorded(self):
        s = summarize([1.0, 1.01, 0.99, 1.02, 50.0])
        assert s.outliers == (4,)
