"""Tests for matrix-file parsing, interpolation and cell expansion."""

from pathlib import Path

import pytest

from repro.bench import (
    BenchConfigError,
    expand_cells,
    interpolate,
    load_config,
    parse_config,
    parse_toml_subset,
)

MATRICES = Path(__file__).parents[2] / "benchmarks" / "matrices"

TOML = """
label = "demo"
repetitions = 2
warmup = 0

[factors]
graph = ["A", "B"]
ranks = [1, 2]

[cell]
variant = "parallel"
ranks = "{ranks}"
tag = "g={graph}/r={ranks}"

[graphs.A]
family = "lfr"
num_vertices = 100

[graphs.B]
family = "lfr"
num_vertices = 200
"""


class TestLoadConfig:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(TOML)
        config = load_config(str(path))
        assert config.label == "demo"
        assert config.repetitions == 2 and config.warmup == 0
        assert list(config.factors) == ["graph", "ranks"]
        assert set(config.graphs) == {"A", "B"}

    def test_json_matrix(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            '{"label": "j", "factors": {"ranks": [1, 2]},'
            ' "cell": {"ranks": "{ranks}", "graph": "g"},'
            ' "graphs": {"g": {"family": "lfr"}}}'
        )
        config = load_config(str(path))
        cells = expand_cells(config)
        assert [c.params["ranks"] for c in cells] == [1, 2]

    def test_missing_label_rejected(self):
        with pytest.raises(BenchConfigError, match="label"):
            parse_config({"factors": {}})

    def test_bad_repetitions_rejected(self):
        with pytest.raises(BenchConfigError, match="repetitions"):
            parse_config({"label": "x", "repetitions": 0})

    def test_empty_factor_list_rejected(self):
        with pytest.raises(BenchConfigError, match="factors"):
            parse_config({"label": "x", "factors": {"ranks": []}})

    def test_unknown_graph_reference(self):
        config = parse_config({"label": "x", "graphs": {"a": {}}})
        with pytest.raises(BenchConfigError, match="unknown graph"):
            config.resolve_graph("nope", {})


class TestInterpolate:
    def test_exact_reference_keeps_type(self):
        assert interpolate("{ranks}", {"ranks": 8}) == 8

    def test_format_string_stringifies(self):
        assert interpolate("r={ranks}", {"ranks": 8}) == "r=8"

    def test_containers_recurse(self):
        out = interpolate({"a": ["{x}", "y={x}"]}, {"x": 3})
        assert out == {"a": [3, "y=3"]}

    def test_unknown_reference_raises(self):
        with pytest.raises(BenchConfigError, match="unknown reference"):
            interpolate("{nope}", {"x": 1})
        with pytest.raises(BenchConfigError, match="unknown reference"):
            interpolate("v={nope}", {"x": 1})

    def test_non_strings_pass_through(self):
        assert interpolate(3.5, {}) == 3.5


class TestExpandCells:
    def test_cross_product_and_ids(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(TOML)
        cells = expand_cells(load_config(str(path)))
        assert len(cells) == 4
        assert cells[0].cell_id == "graph=A,ranks=1"
        # Exact reference stays an int; format string renders.
        assert cells[0].params["ranks"] == 1
        assert cells[0].params["tag"] == "g=A/r=1"

    def test_no_factors_single_cell(self):
        config = parse_config(
            {"label": "solo", "cell": {"variant": "parallel", "graph": "g"}}
        )
        cells = expand_cells(config)
        assert len(cells) == 1
        assert cells[0].cell_id == "solo"

    def test_dict_valued_factor_merges_fields(self):
        config = parse_config({
            "label": "paired",
            "factors": {
                "point": [
                    {"_name": "small", "graph": "g", "nodes": 2},
                    {"_name": "big", "graph": "g", "nodes": 4},
                ],
            },
            "cell": {"ranks": "{nodes}"},
        })
        cells = expand_cells(config)
        assert [c.cell_id for c in cells] == ["point=small", "point=big"]
        assert [c.params["ranks"] for c in cells] == [2, 4]
        # The _name display key never leaks into the run parameters.
        assert all("_name" not in c.params for c in cells)

    def test_exclude_matches_raw_values(self):
        config = parse_config({
            "label": "x",
            "factors": {"ranks": [1, 2, 4]},
            "exclude": [{"ranks": 4}],
        })
        assert [c.factors["ranks"] for c in expand_cells(config)] == ["1", "2"]

    def test_exclude_matches_display_of_dict_factor(self):
        # `workload = "big"` must prune the dict-valued factor whose _name
        # is "big", and an int pattern must match the stringified display.
        config = parse_config({
            "label": "x",
            "factors": {
                "workload": [{"_name": "small"}, {"_name": "big"}],
                "nodes": [32, 64],
            },
            "exclude": [{"workload": "big", "nodes": 64}],
        })
        ids = [c.cell_id for c in expand_cells(config)]
        assert "workload=big,nodes=64" not in ids
        assert len(ids) == 3

    def test_all_excluded_raises(self):
        config = parse_config({
            "label": "x",
            "factors": {"ranks": [1]},
            "exclude": [{"ranks": 1}],
        })
        with pytest.raises(BenchConfigError, match="zero cells"):
            expand_cells(config)


class TestTomlSubsetParser:
    """The 3.10 fallback must agree with tomllib on every checked-in matrix."""

    @pytest.mark.parametrize(
        "path", sorted(MATRICES.glob("*.toml")), ids=lambda p: p.stem
    )
    def test_parity_with_tomllib(self, path):
        tomllib = pytest.importorskip("tomllib")
        text = path.read_text()
        assert parse_toml_subset(text) == tomllib.loads(text)

    def test_scalars_and_inline_tables(self):
        data = parse_toml_subset(
            'a = 1\nb = 2.5\nc = true\nd = "s"\n'
            "e = [1, 2]\nf = { x = 1, _name = \"n\" }\n"
            "[sec.sub]\ng = 0x10\n"
        )
        assert data["a"] == 1 and data["b"] == 2.5 and data["c"] is True
        assert data["e"] == [1, 2]
        assert data["f"] == {"x": 1, "_name": "n"}
        assert data["sec"]["sub"]["g"] == 16

    def test_multiline_array(self):
        data = parse_toml_subset("a = [\n  1,  # comment\n  2,\n]\n")
        assert data["a"] == [1, 2]

    def test_array_of_tables_unsupported(self):
        with pytest.raises(BenchConfigError, match="arrays of tables"):
            parse_toml_subset("[[exclude]]\nranks = 1\n")

    def test_dotted_assignment_unsupported(self):
        with pytest.raises(BenchConfigError, match="dotted"):
            parse_toml_subset("a.b = 1\n")

    def test_unterminated_string_rejected(self):
        with pytest.raises(BenchConfigError, match="unterminated"):
            parse_toml_subset('a = "oops\n')


class TestCheckedInMatrices:
    """Every matrix under benchmarks/matrices/ must load and expand."""

    @pytest.mark.parametrize(
        "path", sorted(MATRICES.glob("*.toml")), ids=lambda p: p.stem
    )
    def test_loads_and_expands(self, path):
        cells = expand_cells(load_config(str(path)))
        assert cells
        for cell in cells:
            assert "graph" in cell.params

    def test_fig9bc_exclude_prunes_rmat_64(self):
        cells = expand_cells(load_config(str(MATRICES / "fig9bc_strong.toml")))
        ids = [c.cell_id for c in cells]
        assert "workload=rmat15,nodes=64" not in ids
        assert "workload=uk2007,nodes=64" in ids
        assert len(ids) == 9
