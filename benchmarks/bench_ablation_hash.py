"""Ablation: hash family x load factor inside a live parallel run
(DESIGN.md §6).

Fig. 6 studies the hash tables in isolation; here each (hash, load factor)
combination drives a full parallel Louvain run, measuring the actual probe
counts the algorithm incurs -- the end-to-end version of the paper's
"Fibonacci and linear congruential perform better" claim.  Also checks the
key-packing ablation: the paper's 16-bit shift (Eq. 5) works only while both
tuple elements fit 16 bits; the 32-bit default removes the limit.
"""

import numpy as np
import pytest
from conftest import once

from repro.generators import generate_lfr
from repro.harness import format_table
from repro.parallel import ParallelLouvainConfig, parallel_louvain


def _probe_stats(graph, hash_function, load_factor):
    res = parallel_louvain(
        graph,
        ParallelLouvainConfig(
            num_ranks=8, hash_function=hash_function, load_factor=load_factor
        ),
    )
    probes = res.simulation.profiler.total().comp_ops.sum()
    return res.final_modularity, probes


def test_ablation_hash_and_load_factor(benchmark):
    def run():
        graph = generate_lfr(
            num_vertices=2000, avg_degree=16, max_degree=64, mixing=0.25, seed=3
        ).graph
        rows = []
        for hash_function in ("fibonacci", "linear_congruential", "bitwise", "concatenated"):
            q, ops = _probe_stats(graph, hash_function, 0.25)
            rows.append((hash_function, 0.25, q, ops))
        for lf in (1.0, 0.5, 0.125):
            q, ops = _probe_stats(graph, "fibonacci", lf)
            rows.append(("fibonacci", lf, q, ops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["hash", "load factor", "final Q", "total work ops"],
            [[h, lf, f"{q:.4f}", f"{ops:.3g}"] for h, lf, q, ops in rows],
            title="Ablation: hash family x load factor (live parallel runs)",
        )
    )

    by_key = {(h, lf): (q, ops) for h, lf, q, ops in rows}
    # Correctness is hash-independent: identical modularity everywhere.
    qs = {round(q, 9) for _, _, q, _ in rows}
    assert len(qs) == 1, "hash choice must not change the result"
    # Work ordering: the good hashes probe no more than the weak ones.
    assert by_key[("fibonacci", 0.25)][1] <= by_key[("bitwise", 0.25)][1]
    # Lower load factor -> fewer probes (paper §V-C2's memory/speed trade).
    assert by_key[("fibonacci", 0.125)][1] <= by_key[("fibonacci", 1.0)][1]


def test_ablation_key_packing_width(benchmark):
    """shift=16 reproduces Eq. 5 exactly but overflows past 2^16 vertices."""

    def run():
        small = generate_lfr(
            num_vertices=1500, avg_degree=12, max_degree=50, mixing=0.2, seed=5
        ).graph
        res16 = parallel_louvain(
            small, ParallelLouvainConfig(num_ranks=4, key_shift=16)
        )
        res32 = parallel_louvain(
            small, ParallelLouvainConfig(num_ranks=4, key_shift=32)
        )
        return small, res16, res32

    small, res16, res32 = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        "Key packing ablation: "
        f"shift=16 Q={res16.final_modularity:.4f}, "
        f"shift=32 Q={res32.final_modularity:.4f}"
    )

    # Identical results while ids fit 16 bits (the paper's regime)...
    assert np.array_equal(res16.membership, res32.membership)
    # ...and an explicit failure (not silent corruption) when they don't.
    big_ids = np.array([0, 70000])
    from repro.hashing import pack_key

    with pytest.raises(ValueError):
        pack_key(
            big_ids.astype(np.uint64), big_ids.astype(np.uint64), shift=16
        )
