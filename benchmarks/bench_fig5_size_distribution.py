"""Fig. 5 -- community size distribution with small social graphs.

Compares the sequential and parallel community-size distributions on the
Amazon and ND-Web proxies (log-binned histograms + largest community).
"""

from conftest import once

from repro.harness import run_fig5


def test_fig5_community_size_distribution(benchmark):
    rows = once(benchmark, run_fig5, ["Amazon", "ND-Web"], num_ranks=8, scale=1.0)

    print()
    print("Fig. 5: community size distribution (log-binned)")
    for r in rows:
        print(f"  {r.graph}: largest community seq={r.seq_largest} par={r.par_largest}")
        print("    size<=   " + " ".join(f"{int(b):>6d}" for b in r.seq_bins))
        print("    seq count" + " ".join(f"{int(c):>6d}" for c in r.seq_counts))
        par = {float(b): int(c) for b, c in zip(r.par_bins, r.par_counts)}
        aligned = [par.get(float(b), 0) for b in r.seq_bins]
        print("    par count" + " ".join(f"{c:>6d}" for c in aligned))

    for r in rows:
        # Paper: largest communities 358-vs-278 (Amazon) and 5020-vs-5286
        # (ND-Web): same magnitude, not identical.
        ratio = r.par_largest / r.seq_largest
        assert 1 / 3 < ratio < 3, r.graph
        # Both distributions have many small communities and few large ones.
        assert r.seq_counts[: len(r.seq_counts) // 2].sum() >= 0
        assert r.seq_counts.sum() > 10, "degenerate partition"
        assert r.par_counts.sum() > 10, "degenerate partition"
        # Similar overall community counts (same order of magnitude).
        assert 1 / 3 < r.par_counts.sum() / r.seq_counts.sum() < 3, r.graph
