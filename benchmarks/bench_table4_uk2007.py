"""Table IV -- performance results of UK-2007 versus the literature.

Runs the UK-2007 proxy on the 128-node P7-IH model (per-rank work
extrapolated to the real 3.78 G-edge dataset) and prints our row next to
the paper's recorded literature rows.
"""

from conftest import once

from repro.harness import format_table, run_table4


def test_table4_uk2007_comparison(benchmark):
    res = once(benchmark, run_table4, nodes=128, scale=1.0)

    print()
    rows = [
        [lit["reference"], f"{lit['time_s']:.1f}",
         lit["modularity"] if lit["modularity"] is not None else "N/A",
         lit["processors"]]
        for lit in res.literature
    ]
    rows.append(
        ["This reproduction (modeled)", f"{res.our_time_s:.1f}",
         f"{res.our_modularity:.3f}", f"{res.nodes} simulated P7-IH nodes"]
    )
    print(
        format_table(
            ["Reference", "Time (s)", "Modularity", "Processors"],
            rows,
            title="Table IV: UK-2007 performance vs the literature",
        )
    )
    print(f"  note: {res.note}")

    paper_row = next(r for r in res.literature if "paper" in r["reference"])
    # Shape claims: our modeled run beats every literature baseline by a
    # wide margin and lands within ~4x of the paper's own 44.9 s.
    slowest_lit = max(
        r["time_s"] for r in res.literature if r is not paper_row
    )
    assert res.our_time_s < slowest_lit / 5
    assert paper_row["time_s"] / 4 < res.our_time_s < paper_row["time_s"] * 4
    # Modularity in the high-0.8s/0.9s band (paper: 0.996 on the real crawl).
    assert res.our_modularity > 0.85
