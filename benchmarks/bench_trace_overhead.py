"""Tracing overhead budgets on the parallel hot path.

The observability contract is that a *disabled* tracer costs almost nothing:
instrumented call sites hold the shared ``NULL_TRACER`` and guard payload
construction behind one ``tracer.enabled`` attribute read.  The streaming
sink extends the same budget to *enabled* runs that write JSONL as they go:
per-event serialization + write + flush must also stay < 5% of the run.
This benchmark enforces both budgets the same way:

1. **Measured bound** -- the per-hook cost (disabled: attribute check +
   no-op call; streaming: one ``JsonlWriterSink.write``), timed in a tight
   loop, multiplied by the number of hook executions a real run performs
   (counted from an enabled run's event stream) must be < 5% of the
   baseline run's wall time.  This is robust to machine noise because the
   per-hook cost is measured directly rather than inferred from the
   difference of two noisy run timings.
2. **Sanity** -- an enabled run must actually produce events, and the
   disabled run must produce none.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.generators import LFRParams, generate_lfr
from repro.observability import JsonlWriterSink, Tracer
from repro.observability.tracer import NULL_TRACER
from repro.parallel import parallel_louvain


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracer_overhead_under_5_percent():
    graph = generate_lfr(
        LFRParams(num_vertices=400, avg_degree=10, max_degree=40, mixing=0.2),
        seed=1,
    ).graph

    # Disabled-path wall time (the production configuration).
    run_seconds = _best_of(lambda: parallel_louvain(graph, num_ranks=4))

    # How many hook executions does this run perform?  Every emitted event of
    # an enabled run corresponds to one guarded call site execution; double it
    # to over-count guards that bail before emitting (span bridge, bus).
    tracer = Tracer()
    parallel_louvain(graph, num_ranks=4, tracer=tracer)
    hook_executions = 2 * len(tracer.events)
    assert hook_executions > 0, "enabled run must emit events"

    # Per-hook disabled cost: enabled check + no-op method dispatch.
    loops = 200_000
    t0 = time.perf_counter()
    for _ in range(loops):
        if NULL_TRACER.enabled:
            NULL_TRACER.iteration(0, 1, movers=0)  # pragma: no cover
    checked = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(loops):
        NULL_TRACER.begin_span("x")
        NULL_TRACER.end_span()
    noop_calls = time.perf_counter() - t0
    per_hook = (checked + noop_calls / 2) / loops

    overhead = hook_executions * per_hook
    fraction = overhead / run_seconds
    print(
        f"\ndisabled-tracer overhead: {overhead * 1e6:.1f}us over "
        f"{run_seconds * 1e3:.1f}ms run "
        f"({hook_executions} hooks x {per_hook * 1e9:.0f}ns) = {fraction:.4%}"
    )
    assert fraction < 0.05, (
        f"disabled tracing costs {fraction:.2%} of the parallel run "
        f"(budget 5%)"
    )


def test_streaming_sink_overhead_under_5_percent():
    """The streamed-trace budget: serializing + writing + flushing every
    event as it is emitted must cost < 5% of the (untraced) run."""
    graph = generate_lfr(
        LFRParams(num_vertices=400, avg_degree=10, max_degree=40, mixing=0.2),
        seed=1,
    ).graph

    run_seconds = _best_of(lambda: parallel_louvain(graph, num_ranks=4))

    # The events a streamed run writes (captured buffered, replayed below).
    tracer = Tracer()
    parallel_louvain(graph, num_ranks=4, tracer=tracer)
    events = tracer.events
    assert events, "enabled run must emit events"

    # Per-event streaming cost: replay the run's real event mix through the
    # sink (flush_every=1, the live-follow configuration) in a tight loop.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "stream.jsonl")
        repeats = max(1, 20_000 // len(events))
        sink = JsonlWriterSink(path)
        t0 = time.perf_counter()
        for _ in range(repeats):
            for ev in events:
                sink.write(ev)
        elapsed = time.perf_counter() - t0
        sink.close()
        per_event = elapsed / (repeats * len(events))

    overhead = len(events) * per_event
    fraction = overhead / run_seconds
    print(
        f"\nstreaming-sink overhead: {overhead * 1e6:.1f}us over "
        f"{run_seconds * 1e3:.1f}ms run "
        f"({len(events)} events x {per_event * 1e6:.2f}us) = {fraction:.4%}"
    )
    assert fraction < 0.05, (
        f"streaming trace costs {fraction:.2%} of the parallel run (budget 5%)"
    )


def test_disabled_run_emits_no_events():
    graph = generate_lfr(
        LFRParams(num_vertices=120, avg_degree=8, max_degree=24, mixing=0.2),
        seed=2,
    ).graph
    before = len(NULL_TRACER.events)
    parallel_louvain(graph, num_ranks=2)
    assert len(NULL_TRACER.events) == before == 0
