"""Ablation: threshold-schedule variants (DESIGN.md §6).

The paper motivates Eq. 7's exponential decay empirically; this ablation
races it against a constant fraction, a linear decay, no throttle at all
(naive), and the schedule refit from fresh LFR traces -- measuring final
modularity, hierarchy depth and level-0 iteration counts.
"""

from conftest import once

from repro.generators import load_social_graph
from repro.harness import format_table, run_fig2
from repro.parallel import (
    ConstantSchedule,
    ExponentialSchedule,
    LinearDecaySchedule,
    naive_parallel_louvain,
    parallel_louvain,
)
from repro.sequential import louvain as sequential_louvain


def test_ablation_threshold_schedules(benchmark):
    def run():
        g = load_social_graph("YouTube", seed=0, scale=0.5).graph
        fit = run_fig2(num_vertices=600, runs_per_config=3, seed=11)
        refit = ExponentialSchedule(p1=fit.fitted_p1, p2=fit.fitted_p2)
        rows = []
        seq = sequential_louvain(g, seed=0)
        rows.append(("sequential (reference)", seq.final_modularity, seq.num_levels, None))
        variants = {
            "eq7 default (p1=.02,p2=.27)": ExponentialSchedule(),
            f"eq7 refit (p1={refit.p1:.3f},p2={refit.p2:.3f})": refit,
            "constant eps=0.3": ConstantSchedule(0.3),
            "constant eps=1.0": ConstantSchedule(1.0),
            "linear decay": LinearDecaySchedule(rate=0.25, floor=0.02),
        }
        for name, sched in variants.items():
            res = parallel_louvain(g, num_ranks=8, schedule=sched)
            rows.append(
                (name, res.final_modularity, res.num_levels,
                 len(res.levels[0].iterations))
            )
        naive = naive_parallel_louvain(g, num_ranks=8, max_inner=12, max_levels=5)
        rows.append(
            ("naive (no threshold)", naive.final_modularity, naive.num_levels,
             len(naive.levels[0].iterations))
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["schedule", "final Q", "levels", "level-0 iters"],
            [[n, f"{q:.4f}", lv, it if it is not None else "-"] for n, q, lv, it in rows],
            title="Ablation: migration-threshold schedules (YouTube proxy, 8 ranks)",
        )
    )

    by_name = dict((r[0], r) for r in rows)
    q_seq = by_name["sequential (reference)"][1]
    q_naive = by_name["naive (no threshold)"][1]
    # The paper's exponential schedules (default and refit) land near the
    # sequential reference -- the design choice Eq. 7 encodes.
    exponential = [r for r in rows if "eq7" in r[0]]
    for name, q, _, _ in exponential:
        assert q > q_seq - 0.08, name
    # A flat 30% throttle is a decent fallback...
    assert by_name["constant eps=0.3"][1] > q_seq - 0.12
    # ...but the *shape* matters: schedules that stay wide-open early
    # (constant 1.0 ~ naive; linear decay with its slow early ramp-down)
    # lose clearly to the exponential decay -- the ablation's finding.
    q_exp = max(q for _, q, _, _ in exponential)
    assert q_exp > by_name["constant eps=1.0"][1] + 0.03
    assert q_exp > by_name["linear decay"][1] + 0.03
    assert q_exp > q_naive + 0.03
