"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure: it runs the harness
experiment once (timed by pytest-benchmark), prints the paper-shaped
rows/series, and asserts the qualitative claims.  Heavy experiments use
``benchmark.pedantic`` with a single round; pytest-benchmark still reports
the wall time of the full experiment.
"""

from __future__ import annotations


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
