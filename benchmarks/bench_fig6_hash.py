"""Fig. 6 -- hash performance.

(a-c) per-thread hashed entries / average bin length / maximum bin length
for Fibonacci vs linear-congruential hashing of a 1D-partitioned R-MAT
graph; (d) average bin length vs load factor.
"""

import numpy as np
from conftest import once

from repro.harness import run_fig6


def test_fig6_hash_behavior(benchmark):
    # Paper: scale-25 R-MAT over 16 nodes x 32 threads.  Same structure at
    # laptop scale: scale-17 R-MAT, identical node/thread partitioning.
    res = once(
        benchmark, run_fig6,
        rmat_scale=17, num_nodes=16, threads_per_node=32, load_factor=0.25,
    )

    print()
    print("Fig. 6: per-(node,thread) hash statistics, R-MAT scale 17, 16x32")
    for h in res.hash_names:
        e, a, m = res.entries[h], res.avg_bin[h], res.max_bin[h]
        print(
            f"  {h:>20s}: entries/thread [{e.min()}, {e.max()}] "
            f"(cv={e.std() / e.mean():.3f})  avg bin [{a.min():.2f}, {a.max():.2f}]  "
            f"max bin [{m.min()}, {m.max()}]"
        )
    print("  (d) load factor sweep (fibonacci, node 0):")
    for lf in sorted(res.load_factor_avg_bin, reverse=True):
        a = res.load_factor_avg_bin[lf]
        print(f"    load={lf:<6g} avg bin length mean={a.mean():.3f} max={a.max():.3f}")

    fib_e = res.entries["fibonacci"]
    lcg_e = res.entries["linear_congruential"]
    # (a) same totals (both store the whole graph), Fibonacci at least as
    # balanced across threads.
    assert fib_e.sum() == lcg_e.sum()
    cv_fib = fib_e.std() / fib_e.mean()
    cv_lcg = lcg_e.std() / lcg_e.mean()
    assert cv_fib <= cv_lcg * 1.5
    # (b, c) Fibonacci bins are no longer than LCG's (paper: max 3 vs 6).
    assert res.avg_bin["fibonacci"].mean() <= res.avg_bin["linear_congruential"].mean() + 0.05
    assert res.max_bin["fibonacci"].max() <= res.max_bin["linear_congruential"].max()
    # Average bin length in the paper's regime (~1-2 at load factor 1/4).
    assert res.avg_bin["fibonacci"].mean() < 2.0
    # (d) monotone: smaller load factor -> shorter bins, approaching 1 at 1/8.
    lfs = sorted(res.load_factor_avg_bin, reverse=True)
    means = [res.load_factor_avg_bin[lf].mean() for lf in lfs]
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
    assert means[-1] < 1.15
