"""Fig. 9 -- scaling analysis (weak and strong, GTEPS).

(a) weak scaling: R-MAT on the BG/Q model and BTER (two GCC settings) on
the P7-IH model, fixed per-node workload; (b) strong scaling of UK-2007 on
P7-IH; (c) strong scaling of R-MAT.  TEPS = input edges / modeled time of
the first level, with per-rank work extrapolated to the paper's per-node
workloads (R-MAT 2^24 edges/node, BTER 2^26 edges/node).

Ported onto the declarative benchmark matrices (fig9a_weak.toml,
fig9bc_strong.toml): the matrices declare graph sizes, machines and
extrapolation targets; this wrapper projects the GTEPS curves out of the
summary and keeps the paper's qualitative claims as assertions.
"""

import os

from conftest import once

from repro.bench import build_summary, load_config, run_matrix
from repro.harness import format_series

MATRIX_DIR = os.path.join(os.path.dirname(__file__), "matrices")


def _run_summary(matrix: str) -> dict:
    config = load_config(os.path.join(MATRIX_DIR, matrix))
    return build_summary(run_matrix(config))


def _weak_curve(summary: dict, prefix: str):
    """(nodes, gteps, modularity) for one fig9a curve (point=<prefix>/n<N>)."""
    points = []
    for cell_id, cell in summary["cells"].items():
        curve, _, node_tag = cell["factors"]["point"].partition("/")
        if curve != prefix:
            continue
        points.append((
            int(node_tag.lstrip("n")),
            cell["metrics"]["gteps"]["median"],
            cell["metrics"]["modularity"]["median"],
        ))
    points.sort()
    return (
        [p[0] for p in points], [p[1] for p in points], [p[2] for p in points]
    )


def _strong_curve(summary: dict, workload: str):
    points = sorted(
        (int(cell["factors"]["nodes"]), cell["metrics"]["gteps"]["median"])
        for cell in summary["cells"].values()
        if cell["factors"]["workload"] == workload
    )
    return [p[0] for p in points], [p[1] for p in points]


def test_fig9a_weak_scaling(benchmark):
    summary = once(benchmark, _run_summary, "fig9a_weak.toml")

    print()
    print("Fig. 9a: weak scaling")
    curves = {name: _weak_curve(summary, name)
              for name in ("rmat", "bter-lo", "bter-hi")}
    for name, (nodes, gteps, _mods) in curves.items():
        print("  " + format_series(f"{name} GTEPS", nodes, gteps, fmt="{:.4f}"))
    bter_lo_mod = curves["bter-lo"][2][-1]
    bter_hi_mod = curves["bter-hi"][2][-1]
    print(
        f"  BTER modularity: GCC~0.15 -> {bter_lo_mod:.3f}, "
        f"GCC~0.55 -> {bter_hi_mod:.3f} (paper: 0.693 and 0.926)"
    )

    for name, (nodes, gteps, _mods) in curves.items():
        # processing rate grows with node count...
        assert all(a < b for a, b in zip(gteps, gteps[1:])), name
        # ...roughly proportionally (within 3x of linear across the sweep).
        growth = (gteps[-1] / gteps[0]) / (nodes[-1] / nodes[0])
        assert growth > 1 / 3, name

    # Paper: higher GCC -> higher modularity and slightly faster processing.
    assert bter_hi_mod > bter_lo_mod + 0.1
    assert curves["bter-hi"][1][-1] > 0.5 * curves["bter-lo"][1][-1]


def test_fig9bc_strong_scaling(benchmark):
    summary = once(benchmark, _run_summary, "fig9bc_strong.toml")

    print()
    print("Fig. 9b: strong scaling, UK-2007 (3.78G edges extrapolated)")
    uk_nodes, uk = _strong_curve(summary, "uk2007")
    print("  " + format_series("UK-2007 GTEPS", uk_nodes, uk, fmt="{:.4f}"))

    assert all(a < b for a, b in zip(uk, uk[1:]))  # monotone speedup
    # sublinear: doubling nodes never doubles the rate at the top end
    assert uk[-1] / uk[-2] < 2.0

    print("Fig. 9c: strong scaling, R-MAT (scale-30 workload extrapolated)")
    rm_nodes, rm = _strong_curve(summary, "rmat15")
    print("  " + format_series("R-MAT GTEPS", rm_nodes, rm, fmt="{:.4f}"))

    assert all(a < b for a, b in zip(rm, rm[1:]))
    # Paper: strong-scaled R-MAT rate is below the weak-scaled rate at the
    # same node count ("the problem scale is not big enough").
    from repro.harness import run_fig9_weak
    from repro.runtime import BGQ

    weak = run_fig9_weak(
        node_counts=[32], vertices_per_node=1024, machine=BGQ, generator="rmat"
    )
    assert rm[-1] < weak.points[0].gteps * 1.5
