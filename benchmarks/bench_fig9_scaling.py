"""Fig. 9 -- scaling analysis (weak and strong, GTEPS).

(a) weak scaling: R-MAT on the BG/Q model and BTER (two GCC settings) on
the P7-IH model, fixed per-node workload; (b) strong scaling of UK-2007 on
P7-IH; (c) strong scaling of R-MAT.  TEPS = input edges / modeled time of
the first level, with per-rank work extrapolated to the paper's per-node
workloads (R-MAT 2^24 edges/node, BTER 2^26 edges/node).
"""

import numpy as np
from conftest import once

from repro.harness import format_series, run_fig9_strong, run_fig9_weak
from repro.runtime import BGQ, P7IH


def _print_curve(curve):
    xs = [p.nodes for p in curve.points]
    print("  " + format_series(
        f"{curve.label} ({curve.machine}) GTEPS", xs,
        [p.gteps for p in curve.points], fmt="{:.4f}",
    ))
    print("  " + format_series(
        "    first-level seconds", xs,
        [p.first_level_seconds for p in curve.points], fmt="{:.2f}",
    ))


def test_fig9a_weak_scaling(benchmark):
    def run():
        rmat = run_fig9_weak(
            node_counts=[2, 4, 8, 16, 32],
            vertices_per_node=1024,
            machine=BGQ,
            generator="rmat",
        )
        bter_lo = run_fig9_weak(
            node_counts=[2, 4, 8, 16, 32],
            vertices_per_node=512,
            machine=P7IH,
            generator="bter",
            bter_rho=0.55,  # measured GCC ~= 0.15 at these parameters
        )
        bter_hi = run_fig9_weak(
            node_counts=[2, 4, 8, 16, 32],
            vertices_per_node=512,
            machine=P7IH,
            generator="bter",
            bter_rho=0.88,  # measured GCC ~= 0.55 at these parameters
        )
        return rmat, bter_lo, bter_hi

    rmat, bter_lo, bter_hi = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Fig. 9a: weak scaling")
    for c in (rmat, bter_lo, bter_hi):
        _print_curve(c)
    print(
        f"  BTER modularity: GCC~0.15 -> {bter_lo.points[-1].modularity:.3f}, "
        f"GCC~0.55 -> {bter_hi.points[-1].modularity:.3f} "
        "(paper: 0.693 and 0.926)"
    )

    for curve in (rmat, bter_lo, bter_hi):
        g = [p.gteps for p in curve.points]
        n = [p.nodes for p in curve.points]
        # processing rate grows with node count...
        assert all(a < b for a, b in zip(g, g[1:])), curve.label
        # ...roughly proportionally (within 3x of linear across the sweep).
        growth = (g[-1] / g[0]) / (n[-1] / n[0])
        assert growth > 1 / 3, curve.label

    # Paper: higher GCC -> higher modularity and slightly faster processing.
    assert bter_hi.points[-1].modularity > bter_lo.points[-1].modularity + 0.1
    assert bter_hi.points[-1].gteps > 0.5 * bter_lo.points[-1].gteps


def test_fig9b_strong_scaling_uk2007(benchmark):
    curve = once(
        benchmark, run_fig9_strong,
        node_counts=[4, 8, 16, 32, 64], machine=P7IH,
        graph_name="UK-2007", scale=1.0,
    )

    print()
    print("Fig. 9b: strong scaling, UK-2007 (3.78G edges extrapolated)")
    _print_curve(curve)

    g = [p.gteps for p in curve.points]
    assert all(a < b for a, b in zip(g, g[1:]))  # monotone speedup
    # sublinear: doubling nodes never doubles the rate at the top end
    assert g[-1] / g[-2] < 2.0


def test_fig9c_strong_scaling_rmat(benchmark):
    curve = once(
        benchmark, run_fig9_strong,
        node_counts=[4, 8, 16, 32], machine=BGQ, rmat_scale=15,
    )

    print()
    print("Fig. 9c: strong scaling, R-MAT (scale-30 workload extrapolated)")
    _print_curve(curve)

    g = [p.gteps for p in curve.points]
    assert all(a < b for a, b in zip(g, g[1:]))
    # Paper: strong-scaled R-MAT rate is below the weak-scaled rate at the
    # same node count ("the problem scale is not big enough").
    weak = run_fig9_weak(
        node_counts=[32], vertices_per_node=1024, machine=BGQ, generator="rmat"
    )
    assert g[-1] < weak.points[0].gteps * 1.5
