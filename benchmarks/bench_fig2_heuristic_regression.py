"""Fig. 2 -- simulation analysis of the convergence heuristic.

Traces the fraction of vertices moved per inner iteration of sequential
Louvain over LFR graphs with varying (k, gamma, beta, mu), fits Eq. 7 by
regression, and prints measured-vs-predicted decay.
"""

import numpy as np
from conftest import once

from repro.harness import format_series, run_fig2


def test_fig2_migration_regression(benchmark):
    res = once(benchmark, run_fig2, num_vertices=1000, runs_per_config=8, seed=0)

    print()
    print("Fig. 2: vertex update fraction vs inner iteration (LFR sweeps)")
    max_len = max(len(t) for t in res.traces)
    for it in range(min(max_len, 10)):
        vals = [t[it] for t in res.traces if len(t) > it]
        print(
            f"  iter {it + 1}: measured mean={np.mean(vals):.4f} "
            f"(n={len(vals)}, min={min(vals):.4f}, max={max(vals):.4f}) "
            f"| eq7 prediction={res.predicted[it]:.4f}"
        )
    print(f"  fitted p1={res.fitted_p1:.4f}  p2={res.fitted_p2:.4f}")
    print(format_series("eq7", list(range(1, len(res.predicted) + 1)), res.predicted))

    # Inverse-exponential relationship: the first iteration moves most
    # vertices, later iterations a vanishing fraction.
    first = [t[0] for t in res.traces]
    assert np.mean(first) > 0.5
    late = [t[4] for t in res.traces if len(t) > 4]
    assert np.mean(late) < 0.25 * np.mean(first)
    # The fit must reproduce the decay direction and rough magnitude.
    assert res.predicted[0] > 4 * res.predicted[-1] or res.predicted[-1] < 0.05
    assert 0 < res.fitted_p1 < 1
    assert res.fitted_p2 > 0
