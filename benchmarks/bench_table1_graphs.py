"""Table I -- graphs used for evaluation.

Regenerates every input family: the nine real-world proxies plus LFR, R-MAT
and BTER, and prints the inventory with both original and proxy sizes.
"""

from conftest import once

from repro.harness import format_table, run_table1


def test_table1_graph_inventory(benchmark):
    rows = once(benchmark, run_table1, scale=1.0)

    print()
    print(
        format_table(
            ["Category", "Size", "Name", "Orig |V|", "Orig |E|", "Proxy |V|", "Proxy |E|"],
            [
                [r.category, r.size_class, r.name, r.orig_vertices,
                 r.orig_edges, r.proxy_vertices, r.proxy_edges]
                for r in rows
            ],
            title="Table I: graphs used for evaluation (proxies at laptop scale)",
        )
    )

    assert len(rows) == 12
    names = [r.name for r in rows]
    for expected in (
        "Amazon", "DBLP", "ND-Web", "YouTube", "LiveJournal",
        "Wikipedia", "UK-2005", "Twitter", "UK-2007", "LFR", "R-MAT", "BTER",
    ):
        assert expected in names
    # Density ordering survives the scale-down: UK-2007 proxy is the densest
    # real-world graph, Amazon among the sparsest.
    by_name = {r.name: r for r in rows}
    deg = lambda r: 2 * r.proxy_edges / r.proxy_vertices  # noqa: E731
    assert deg(by_name["UK-2007"]) > deg(by_name["Amazon"])
    assert deg(by_name["Twitter"]) > deg(by_name["DBLP"])
