"""Extension: label propagation vs parallel Louvain on shared infrastructure.

The paper positions LPA-based systems ([10] Staudt, [12] Ovelgönne, [45]
Soman) as the main distributed alternatives and claims its two-table design
generalizes beyond Louvain (§IV-A).  This bench runs our LPA implementation
-- built on the *identical* partition/tables/runtime -- against parallel
Louvain across the proxy suite, comparing quality (modularity, conductance)
and communication volume.
"""

from conftest import once

from repro.generators import load_social_graph
from repro.harness import format_table
from repro.metrics import mean_conductance, modularity
from repro.parallel import label_propagation, parallel_louvain

GRAPHS = ["Amazon", "ND-Web", "YouTube", "Wikipedia"]


def test_extension_lpa_vs_louvain(benchmark):
    def run():
        rows = []
        for name in GRAPHS:
            g = load_social_graph(name, seed=0, scale=0.5).graph
            louv = parallel_louvain(g, num_ranks=8)
            lpa = label_propagation(g, num_ranks=8)
            q_louv = louv.final_modularity
            q_lpa = modularity(g, lpa.membership)
            rows.append(
                (
                    name,
                    q_louv,
                    q_lpa,
                    mean_conductance(g, louv.membership),
                    mean_conductance(g, lpa.membership),
                    float(louv.simulation.profiler.total().records_sent.sum()),
                    float(lpa.simulation.profiler.total().records_sent.sum()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["Graph", "Q Louvain", "Q LPA", "cond. Louvain", "cond. LPA",
             "records Louvain", "records LPA"],
            [[n, f"{ql:.4f}", f"{qp:.4f}", f"{cl:.3f}", f"{cp:.3f}",
              f"{rl:.3g}", f"{rp:.3g}"] for n, ql, qp, cl, cp, rl, rp in rows],
            title="Extension: LPA vs parallel Louvain (same runtime, 8 ranks)",
        )
    )

    for name, q_louv, q_lpa, c_louv, c_lpa, rec_louv, rec_lpa in rows:
        # LPA finds real structure on community-rich graphs...
        if name in ("Amazon", "ND-Web"):
            assert q_lpa > 0.3, name
        # ...but Louvain's modularity is at least as good everywhere.
        assert q_louv >= q_lpa - 0.02, name
        # LPA's single-level sweep ships fewer records than the multi-level
        # Louvain pipeline -- the cost/quality trade-off.
        assert rec_lpa < rec_louv, name
