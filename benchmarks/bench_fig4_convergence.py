"""Fig. 4 -- convergence and detection quality with social networks.

Compares modularity per outer-loop level (4a) and the evolution ratio (4b)
for the sequential algorithm, the parallel algorithm with the convergence
heuristic, and the naive parallel algorithm without it.

Ported onto the declarative benchmark matrix in
``benchmarks/matrices/fig4_convergence.toml``: the (graph x variant) sweep
is declared there and this wrapper runs it with ``keep_raw=True``, then
projects the per-level modularity and evolution-ratio curves from each
cell's raw result.  The same sweep is reproducible from the CLI::

    repro bench run benchmarks/matrices/fig4_convergence.toml
"""

import os

import numpy as np
from conftest import once

from repro.bench import load_config, run_matrix
from repro.harness import format_table
from repro.harness.experiments import Fig4Row
from repro.metrics import evolution_ratio

MATRIX_DIR = os.path.join(os.path.dirname(__file__), "matrices")
GRAPHS = ["Amazon", "DBLP", "ND-Web", "YouTube", "LiveJournal", "Wikipedia", "UK-2005"]


def _level_sizes(result) -> list[int]:
    return [
        int(np.unique(result.membership_at_level(i)).size)
        for i in range(result.num_levels)
    ]


def _run_rows() -> list[Fig4Row]:
    config = load_config(os.path.join(MATRIX_DIR, "fig4_convergence.toml"))
    matrix = run_matrix(config, keep_raw=True)
    raws = {
        (c.cell.factors["graph"], c.cell.factors["variant"]): c.timed[0].raw
        for c in matrix.cells
    }
    rows = []
    for graph in GRAPHS:
        seq = raws[(graph, "sequential")]
        par = raws[(graph, "parallel")]
        naive = raws[(graph, "naive")]
        n0 = int(par.membership.size)
        seq_sizes = _level_sizes(seq)
        par_sizes = _level_sizes(par)
        rows.append(
            Fig4Row(
                graph=graph,
                sequential_q=list(seq.modularities),
                parallel_q=list(par.modularities),
                naive_q=list(naive.modularities),
                sequential_evolution=[evolution_ratio(s, n0) for s in seq_sizes],
                parallel_evolution=[evolution_ratio(s, n0) for s in par_sizes],
                first_level_merge_fraction=(
                    1.0 - (par_sizes[0] / n0 if par_sizes else 1.0)
                ),
            )
        )
    return rows


def test_fig4_convergence_and_quality(benchmark):
    rows = once(benchmark, _run_rows)

    print()
    fmt = lambda xs: " ".join(f"{x:.3f}" for x in xs)  # noqa: E731
    print(
        format_table(
            ["Graph", "Seq Q/level", "Par Q/level", "Naive Q/level", "Par evol. ratio", "1st-iter merge"],
            [
                [r.graph, fmt(r.sequential_q), fmt(r.parallel_q), fmt(r.naive_q),
                 fmt(r.parallel_evolution), f"{r.first_level_merge_fraction:.1%}"]
                for r in rows
            ],
            title="Fig. 4: modularity per outer loop (a) and evolution ratio (b)",
        )
    )

    for r in rows:
        # (a) parallel with heuristic is on par with sequential...
        assert r.parallel_q[-1] >= r.sequential_q[-1] - 0.1, r.graph
        # ...while the naive version stalls at clearly lower modularity.
        assert r.naive_q[-1] < r.parallel_q[-1], r.graph
        # (b) the evolution ratio drops monotonically.
        ev = r.parallel_evolution
        assert all(a >= b - 1e-9 for a, b in zip(ev, ev[1:])), r.graph

    # Paper: LiveJournal, ND-Web, Wikipedia, UK-2005 merge >94% of vertices
    # in the first iteration; at proxy scale the bar is lower but the strong
    # community graphs must still collapse hard in level 0.
    strong = {r.graph: r for r in rows}
    for name in ("ND-Web", "UK-2005", "LiveJournal", "Wikipedia"):
        assert strong[name].first_level_merge_fraction > 0.75, name

    # The naive variant loses by a wide margin on at least one strong graph
    # (the paper shows near-flat naive curves).
    assert any(r.parallel_q[-1] - r.naive_q[-1] > 0.1 for r in rows)
