"""Fig. 4 -- convergence and detection quality with social networks.

Compares modularity per outer-loop level (4a) and the evolution ratio (4b)
for the sequential algorithm, the parallel algorithm with the convergence
heuristic, and the naive parallel algorithm without it.
"""

from conftest import once

from repro.harness import format_table, run_fig4


def test_fig4_convergence_and_quality(benchmark):
    rows = once(
        benchmark,
        run_fig4,
        ["Amazon", "DBLP", "ND-Web", "YouTube", "LiveJournal", "Wikipedia", "UK-2005"],
        num_ranks=8,
        scale=0.5,
        naive_max_inner=10,
    )

    print()
    fmt = lambda xs: " ".join(f"{x:.3f}" for x in xs)  # noqa: E731
    print(
        format_table(
            ["Graph", "Seq Q/level", "Par Q/level", "Naive Q/level", "Par evol. ratio", "1st-iter merge"],
            [
                [r.graph, fmt(r.sequential_q), fmt(r.parallel_q), fmt(r.naive_q),
                 fmt(r.parallel_evolution), f"{r.first_level_merge_fraction:.1%}"]
                for r in rows
            ],
            title="Fig. 4: modularity per outer loop (a) and evolution ratio (b)",
        )
    )

    for r in rows:
        # (a) parallel with heuristic is on par with sequential...
        assert r.parallel_q[-1] >= r.sequential_q[-1] - 0.1, r.graph
        # ...while the naive version stalls at clearly lower modularity.
        assert r.naive_q[-1] < r.parallel_q[-1], r.graph
        # (b) the evolution ratio drops monotonically.
        ev = r.parallel_evolution
        assert all(a >= b - 1e-9 for a, b in zip(ev, ev[1:])), r.graph

    # Paper: LiveJournal, ND-Web, Wikipedia, UK-2005 merge >94% of vertices
    # in the first iteration; at proxy scale the bar is lower but the strong
    # community graphs must still collapse hard in level 0.
    strong = {r.graph: r for r in rows}
    for name in ("ND-Web", "UK-2005", "LiveJournal", "Wikipedia"):
        assert strong[name].first_level_merge_fraction > 0.75, name

    # The naive variant loses by a wide margin on at least one strong graph
    # (the paper shows near-flat naive curves).
    assert any(r.parallel_q[-1] - r.naive_q[-1] > 0.1 for r in rows)
