"""Table III -- quality comparison on community structure.

NMI / F-measure / NVD / RI / ARI / JI between the sequential and parallel
partitions on Amazon, ND-Web and LFR(mu=0.4 / 0.5), at full proxy scale.

Ported onto the declarative benchmark matrix (table3_quality.toml): the
matrix runs both variants per graph with ``keep_membership=True``; this
wrapper pairs the partitions and computes the similarity report.
"""

import os

from conftest import once

from repro.bench import load_config, run_matrix
from repro.harness import format_table
from repro.metrics import compare_partitions

MATRIX_DIR = os.path.join(os.path.dirname(__file__), "matrices")

#: Matrix graph names -> the paper's Table III row labels.
ROW_LABELS = {
    "Amazon": "Amazon",
    "ND-Web": "ND-Web",
    "lfr-mu04": "LFR(mu=0.4)",
    "lfr-mu05": "LFR(mu=0.5)",
}


def _run_reports() -> dict:
    config = load_config(os.path.join(MATRIX_DIR, "table3_quality.toml"))
    result = run_matrix(config, keep_membership=True)
    memberships: dict[tuple[str, str], object] = {}
    for cell_result in result.cells:
        factors = cell_result.cell.factors
        memberships[(factors["graph"], factors["variant"])] = (
            cell_result.timed[0].membership
        )
    return {
        ROW_LABELS[graph]: compare_partitions(
            memberships[(graph, "sequential")], memberships[(graph, "parallel")]
        )
        for graph in ROW_LABELS
    }


def test_table3_partition_similarity(benchmark):
    by_name = once(benchmark, _run_reports)

    print()
    print(
        format_table(
            ["Graphs", "NMI", "F-measure", "NVD", "RI", "ARI", "JI"],
            [
                [name, rep.nmi, rep.f_measure, rep.nvd, rep.rand_index,
                 rep.adjusted_rand_index, rep.jaccard_index]
                for name, rep in by_name.items()
            ],
            title="Table III: parallel-vs-sequential partition similarity",
            float_fmt="{:.4f}",
        )
    )

    # Paper shape: NVD close to 0 and the rest close to 1, strongest on the
    # structured graphs.  Proxy scale loosens the absolute numbers (see
    # EXPERIMENTS.md) but the ordering and regime must hold.
    for name in ("Amazon", "ND-Web", "LFR(mu=0.4)"):
        rep = by_name[name]
        assert rep.nmi > 0.7, name
        assert rep.rand_index > 0.9, name
        assert rep.nvd < 0.35, name
    # Weaker community structure (mu=0.5) yields lower but still substantial
    # agreement -- same ordering as the paper's Table III.
    assert by_name["LFR(mu=0.5)"].rand_index > 0.85
    assert by_name["LFR(mu=0.4)"].nmi >= by_name["LFR(mu=0.5)"].nmi - 0.05
    # Strongly structured graphs agree more (paper: ND-Web > Amazon).
    assert by_name["ND-Web"].nmi > 0.75
