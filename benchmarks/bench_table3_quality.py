"""Table III -- quality comparison on community structure.

NMI / F-measure / NVD / RI / ARI / JI between the sequential and parallel
partitions on Amazon, ND-Web and LFR(mu=0.4 / 0.5), at full proxy scale.
"""

from conftest import once

from repro.harness import format_table, run_table3


def test_table3_partition_similarity(benchmark):
    rows = once(benchmark, run_table3, num_ranks=8, scale=1.0)

    print()
    print(
        format_table(
            ["Graphs", "NMI", "F-measure", "NVD", "RI", "ARI", "JI"],
            [
                [r.graph, rep.nmi, rep.f_measure, rep.nvd, rep.rand_index,
                 rep.adjusted_rand_index, rep.jaccard_index]
                for r in rows
                for rep in [r.report]
            ],
            title="Table III: parallel-vs-sequential partition similarity",
            float_fmt="{:.4f}",
        )
    )

    by_name = {r.graph: r.report for r in rows}
    # Paper shape: NVD close to 0 and the rest close to 1, strongest on the
    # structured graphs.  Proxy scale loosens the absolute numbers (see
    # EXPERIMENTS.md) but the ordering and regime must hold.
    for name in ("Amazon", "ND-Web", "LFR(mu=0.4)"):
        rep = by_name[name]
        assert rep.nmi > 0.7, name
        assert rep.rand_index > 0.9, name
        assert rep.nvd < 0.35, name
    # Weaker community structure (mu=0.5) yields lower but still substantial
    # agreement -- same ordering as the paper's Table III.
    assert by_name["LFR(mu=0.5)"].rand_index > 0.85
    assert by_name["LFR(mu=0.4)"].nmi >= by_name["LFR(mu=0.5)"].nmi - 0.05
    # Strongly structured graphs agree more (paper: ND-Web > Amazon).
    assert by_name["ND-Web"].nmi > 0.75
