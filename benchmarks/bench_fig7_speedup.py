"""Fig. 7 -- speedup with medium and large social graphs.

(a) thread speedup on a single P7-IH node (2-32 threads); (b, c) node
speedup from 1 to 64 nodes, all relative to the modeled single-threaded
sequential implementation, with per-rank work extrapolated to the real
dataset sizes.

Ported onto the declarative benchmark matrices in ``benchmarks/matrices/``
(fig7a_threads.toml, fig7bc_nodes.toml): this wrapper only runs the matrix
and projects speedup curves out of the summary cells, so the same sweeps
are reproducible from the CLI::

    repro bench run benchmarks/matrices/fig7a_threads.toml
"""

import os

from conftest import once

from repro.bench import build_summary, load_config, run_matrix
from repro.harness import format_series

MATRIX_DIR = os.path.join(os.path.dirname(__file__), "matrices")
GRAPHS = ["LiveJournal", "Wikipedia", "UK-2005", "Twitter"]


def _run_summary(matrix: str) -> dict:
    config = load_config(os.path.join(MATRIX_DIR, matrix))
    return build_summary(run_matrix(config))


def _speedup_curve(summary: dict, graph: str, axis: str, base_cell: str):
    """(x values, speedups) for one graph, vs the base cell's sequential
    reference seconds."""
    base = summary["cells"][base_cell]["metrics"]["seq_reference_s"]["median"]
    xs, speedups = [], []
    for cell in summary["cells"].values():
        if cell["factors"]["graph"] != graph:
            continue
        xs.append(int(cell["factors"][axis]))
        speedups.append(base / cell["metrics"]["modeled_s"]["median"])
    order = sorted(range(len(xs)), key=xs.__getitem__)
    return [xs[i] for i in order], [speedups[i] for i in order]


def test_fig7a_thread_speedup(benchmark):
    summary = once(benchmark, _run_summary, "fig7a_threads.toml")

    print()
    print("Fig. 7a: thread speedup on one P7-IH node (vs 1-thread sequential)")
    for graph in GRAPHS:
        x, speedup = _speedup_curve(
            summary, graph, "threads", f"graph={graph},threads=2"
        )
        print("  " + format_series(graph, x, speedup, fmt="{:.1f}"))

        assert speedup == sorted(speedup), graph  # monotone
        assert 4 < speedup[-1] < 32, graph  # substantial but sublinear


def test_fig7bc_node_speedup(benchmark):
    summary = once(benchmark, _run_summary, "fig7bc_nodes.toml")

    print()
    print("Fig. 7b/c: node speedup, 32 threads/node (vs 1-thread sequential)")
    curves = {}
    for graph in GRAPHS:
        x, speedup = _speedup_curve(
            summary, graph, "nodes", f"graph={graph},nodes=1"
        )
        curves[graph] = (x, speedup)
        print("  " + format_series(graph, x, speedup, fmt="{:.1f}"))

    for graph, (x, speedup) in curves.items():
        # every graph gains from distribution at moderate node counts
        assert max(speedup) > 2 * speedup[0], graph
    # Large graphs keep scaling to 64 nodes; the medium ones saturate first
    # (paper: UK-2005 reaches 49.8x at 64 nodes).
    uk_x, uk = curves["UK-2005"]
    assert uk[-1] == max(uk)
    assert uk[-1] > 30
    lj_x, lj = curves["LiveJournal"]
    assert lj.index(max(lj)) < len(lj_x) - 1  # knee before 64
