"""Fig. 7 -- speedup with medium and large social graphs.

(a) thread speedup on a single P7-IH node (2-32 threads); (b, c) node
speedup from 1 to 64 nodes, all relative to the modeled single-threaded
sequential implementation, with per-rank work extrapolated to the real
dataset sizes.
"""

from conftest import once

from repro.harness import format_series, run_fig7_nodes, run_fig7_threads

GRAPHS = ["LiveJournal", "Wikipedia", "UK-2005", "Twitter"]


def test_fig7a_thread_speedup(benchmark):
    curves = once(benchmark, run_fig7_threads, GRAPHS, scale=0.5)

    print()
    print("Fig. 7a: thread speedup on one P7-IH node (vs 1-thread sequential)")
    for c in curves:
        print("  " + format_series(c.graph, c.x, c.speedup, fmt="{:.1f}"))

    for c in curves:
        assert c.speedup == sorted(c.speedup), c.graph  # monotone
        assert 4 < c.speedup[-1] < 32, c.graph  # substantial but sublinear


def test_fig7bc_node_speedup(benchmark):
    curves = once(
        benchmark, run_fig7_nodes, GRAPHS,
        node_counts=[1, 2, 4, 8, 16, 32, 64], scale=0.5,
    )

    print()
    print("Fig. 7b/c: node speedup, 32 threads/node (vs 1-thread sequential)")
    for c in curves:
        print("  " + format_series(c.graph, c.x, c.speedup, fmt="{:.1f}"))

    by_name = {c.graph: c for c in curves}
    for c in curves:
        # every graph gains from distribution at moderate node counts
        assert max(c.speedup) > 2 * c.speedup[0], c.graph
    # Large graphs keep scaling to 64 nodes; the medium ones saturate first
    # (paper: UK-2005 reaches 49.8x at 64 nodes).
    uk = by_name["UK-2005"]
    assert uk.speedup[-1] == max(uk.speedup)
    assert uk.speedup[-1] > 30
    lj = by_name["LiveJournal"]
    assert lj.speedup.index(max(lj.speedup)) < len(lj.x) - 1  # knee before 64
