"""Fig. 8 -- execution time breakdown with UK-2007.

(a) per-outer-loop breakdown into REFINE and GRAPH RECONSTRUCTION;
(b) per-inner-iteration breakdown of the first outer loop into FIND BEST
COMMUNITY / UPDATE COMMUNITY INFORMATION / STATE PROPAGATION -- modeled on
the P7-IH machine at several node counts.
"""

from conftest import once

from repro.harness import run_fig8


def test_fig8_time_breakdown(benchmark):
    res = once(
        benchmark, run_fig8,
        graph_name="UK-2007", node_counts=[32, 64, 128], scale=1.0,
    )

    print()
    print("Fig. 8a: outer-loop breakdown (modeled seconds, UK-2007 proxy)")
    for nodes, levels in zip(res.node_counts, res.outer_breakdown):
        print(f"  {nodes} nodes:")
        for i, phases in enumerate(levels):
            row = "  ".join(f"{k}={v:.3f}s" for k, v in sorted(phases.items()))
            print(f"    level {i}: {row}")
    print("Fig. 8b: inner-loop breakdown, first outer loop (128 nodes)")
    for i, phases in enumerate(res.inner_breakdown[-1][:8]):
        row = "  ".join(f"{k}={v:.4f}s" for k, v in sorted(phases.items()))
        print(f"    iter {i + 1}: {row}")
    print(f"  modularity per node count: {[round(q, 3) for q in res.modularities]}")

    for nodes, levels in zip(res.node_counts, res.outer_breakdown):
        refine = sum(lv.get("REFINE", 0.0) for lv in levels)
        recon = sum(lv.get("GRAPH_RECONSTRUCTION", 0.0) for lv in levels)
        # Paper: REFINE dominates; GRAPH RECONSTRUCTION is negligible.
        assert refine > 5 * recon, f"{nodes} nodes"
        # Paper: the first outer loop takes >90% of the total.
        t0 = sum(levels[0].values())
        total = sum(sum(lv.values()) for lv in levels)
        assert t0 > 0.6 * total, f"{nodes} nodes"

    # More nodes -> faster inner loops (strong scaling of the breakdown).
    first_iter_cost = [
        sum(inner[0].values()) for inner in res.inner_breakdown if inner
    ]
    assert first_iter_cost[-1] < first_iter_cost[0]

    # Fig. 8b: FIND_BEST / UPDATE shrink across iterations as vertices
    # settle, while STATE_PROPAGATION stays roughly flat.
    inner = res.inner_breakdown[-1]
    if len(inner) >= 4:
        fb = [it.get("FIND_BEST", 0.0) for it in inner]
        sp = [it.get("STATE_PROPAGATION", 0.0) for it in inner]
        assert fb[0] >= fb[-1] * 0.9
        assert max(sp) < 4 * min(x for x in sp if x > 0)
