"""Fig. 8 -- execution time breakdown with UK-2007.

(a) per-outer-loop breakdown into REFINE and GRAPH RECONSTRUCTION;
(b) per-inner-iteration breakdown of the first outer loop into FIND BEST
COMMUNITY / UPDATE COMMUNITY INFORMATION / STATE PROPAGATION -- modeled on
the P7-IH machine at several node counts.

Ported onto the declarative benchmark matrix in
``benchmarks/matrices/fig8_breakdown.toml``: the node sweep is declared
there and this wrapper runs it with ``keep_raw=True``, then projects the
per-level / per-iteration modeled breakdowns from each cell's raw result
(:func:`repro.harness.fig8_level_breakdown` /
:func:`repro.harness.fig8_iteration_breakdown`).  The same sweep is
reproducible from the CLI::

    repro bench run benchmarks/matrices/fig8_breakdown.toml
"""

import os

from conftest import once

from repro.bench import load_config, run_matrix
from repro.harness import fig8_iteration_breakdown, fig8_level_breakdown

MATRIX_DIR = os.path.join(os.path.dirname(__file__), "matrices")


def _run_breakdowns():
    config = load_config(os.path.join(MATRIX_DIR, "fig8_breakdown.toml"))
    matrix = run_matrix(config, keep_raw=True)
    node_counts, outer, inner, mods = [], [], [], []
    for cell_result in sorted(
        matrix.cells, key=lambda c: int(c.cell.params["nodes"])
    ):
        rep = cell_result.timed[0]
        nodes = int(cell_result.cell.params["nodes"])
        ws = rep.work_scale if rep.work_scale is not None else 1.0
        node_counts.append(nodes)
        outer.append(fig8_level_breakdown(rep.raw, nodes=nodes, work_scale=ws))
        inner.append(
            fig8_iteration_breakdown(rep.raw, nodes=nodes, work_scale=ws)
        )
        mods.append(rep.modularity)
    return node_counts, outer, inner, mods


def test_fig8_time_breakdown(benchmark):
    node_counts, outer_breakdown, inner_breakdown, modularities = once(
        benchmark, _run_breakdowns
    )

    print()
    print("Fig. 8a: outer-loop breakdown (modeled seconds, UK-2007 proxy)")
    for nodes, levels in zip(node_counts, outer_breakdown):
        print(f"  {nodes} nodes:")
        for i, phases in enumerate(levels):
            row = "  ".join(f"{k}={v:.3f}s" for k, v in sorted(phases.items()))
            print(f"    level {i}: {row}")
    print("Fig. 8b: inner-loop breakdown, first outer loop (128 nodes)")
    for i, phases in enumerate(inner_breakdown[-1][:8]):
        row = "  ".join(f"{k}={v:.4f}s" for k, v in sorted(phases.items()))
        print(f"    iter {i + 1}: {row}")
    print(f"  modularity per node count: {[round(q, 3) for q in modularities]}")

    for nodes, levels in zip(node_counts, outer_breakdown):
        refine = sum(lv.get("REFINE", 0.0) for lv in levels)
        recon = sum(lv.get("GRAPH_RECONSTRUCTION", 0.0) for lv in levels)
        # Paper: REFINE dominates; GRAPH RECONSTRUCTION is negligible.
        assert refine > 5 * recon, f"{nodes} nodes"
        # Paper: the first outer loop takes >90% of the total.
        t0 = sum(levels[0].values())
        total = sum(sum(lv.values()) for lv in levels)
        assert t0 > 0.6 * total, f"{nodes} nodes"

    # More nodes -> faster inner loops (strong scaling of the breakdown).
    first_iter_cost = [
        sum(inner[0].values()) for inner in inner_breakdown if inner
    ]
    assert first_iter_cost[-1] < first_iter_cost[0]

    # Fig. 8b: FIND_BEST / UPDATE shrink across iterations as vertices
    # settle, while STATE_PROPAGATION stays roughly flat.
    inner = inner_breakdown[-1]
    if len(inner) >= 4:
        fb = [it.get("FIND_BEST", 0.0) for it in inner]
        sp = [it.get("STATE_PROPAGATION", 0.0) for it in inner]
        assert fb[0] >= fb[-1] * 0.9
        assert max(sp) < 4 * min(x for x in sp if x > 0)
