"""Sanitizer-disabled overhead budget on the parallel hot path.

The :mod:`repro.analysis` contract mirrors the observability one: a
*disabled* sanitizer costs almost nothing, because every hook site holds the
shared ``NULL_SANITIZER`` and guards check construction behind one
``sanitizer.enabled`` attribute read.  Enforced the same two ways as
``bench_trace_overhead.py``:

1. **Measured bound** -- the per-hook disabled cost (attribute check + no-op
   call, timed in a tight loop) multiplied by the number of checks a real
   sanitized run performs (``Sanitizer.checks_run``) must be < 5% of the
   disabled run's wall time.  Measuring the no-op directly is robust to
   machine noise; differencing two noisy run timings is not.
2. **Sanity** -- an enabled run must actually run checks, and the disabled
   path must leave the shared null instance untouched.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import NULL_SANITIZER, Sanitizer
from repro.generators import LFRParams, generate_lfr
from repro.parallel import parallel_louvain


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_sanitizer_overhead_under_5_percent():
    graph = generate_lfr(
        LFRParams(num_vertices=400, avg_degree=10, max_degree=40, mixing=0.2),
        seed=1,
    ).graph

    # Disabled-path wall time (the production configuration).
    run_seconds = _best_of(lambda: parallel_louvain(graph, num_ranks=4))

    # How many hook executions does this run perform?  ``checks_run`` counts
    # every individual check a sanitized run makes; double it to over-count
    # guard sites that bail before reaching a check (table/bus fast paths).
    san = Sanitizer()
    parallel_louvain(graph, num_ranks=4, sanitize=san)
    hook_executions = 2 * san.checks_run
    assert hook_executions > 0, "sanitized run must perform checks"

    # Per-hook disabled cost: enabled check + no-op method dispatch.
    loops = 200_000
    ids = np.array([1], dtype=np.int64)
    t0 = time.perf_counter()
    for _ in range(loops):
        if NULL_SANITIZER.enabled:
            NULL_SANITIZER.check_epsilon(0.5, 1)  # pragma: no cover
    checked = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(loops):
        NULL_SANITIZER.check_pack_bounds(ids, ids, 32)
        NULL_SANITIZER.check_conservation(0.0, 0.0)
    noop_calls = time.perf_counter() - t0
    per_hook = (checked + noop_calls / 2) / loops

    overhead = hook_executions * per_hook
    fraction = overhead / run_seconds
    print(
        f"\ndisabled-sanitizer overhead: {overhead * 1e6:.1f}us over "
        f"{run_seconds * 1e3:.1f}ms run "
        f"({hook_executions} hooks x {per_hook * 1e9:.0f}ns) = {fraction:.4%}"
    )
    assert fraction < 0.05, (
        f"disabled sanitizing costs {fraction:.2%} of the parallel run "
        f"(budget 5%)"
    )


def test_disabled_run_leaves_null_sanitizer_untouched():
    graph = generate_lfr(
        LFRParams(num_vertices=120, avg_degree=8, max_degree=24, mixing=0.2),
        seed=2,
    ).graph
    res = parallel_louvain(graph, num_ranks=2)
    assert res.simulation.sanitizer is NULL_SANITIZER
    assert NULL_SANITIZER.checks_run == 0


def test_sanitized_run_is_bitwise_identical():
    """Sanitizing observes; it must never steer the algorithm."""
    graph = generate_lfr(
        LFRParams(num_vertices=300, avg_degree=10, max_degree=30, mixing=0.2),
        seed=3,
    ).graph
    plain = parallel_louvain(graph, num_ranks=3)
    checked = parallel_louvain(graph, num_ranks=3, sanitize=True)
    assert np.array_equal(plain.membership, checked.membership)
    assert plain.modularities == checked.modularities
